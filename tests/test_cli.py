"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["networks"],
            ["compare", "BERT-Base"],
            ["table2", "--budget", "10", "--networks", "ViT-B/14"],
            ["fig5", "--no-search"],
            ["limits", "--emb", "128"],
            ["sdunet"],
            ["ablation", "overwrite"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_exec_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4 and args.cache_dir == "/tmp/c" and args.no_cache
        defaults = build_parser().parse_args(["fig6"])
        assert defaults.jobs == 1 and not defaults.no_cache

    def test_search_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--search-workers", "4", "--search-backend", "process", "--stream"]
        )
        assert args.search_workers == 4
        assert args.search_backend == "process"
        assert args.stream
        defaults = build_parser().parse_args(["fig7"])
        assert defaults.search_workers is None
        assert defaults.search_backend is None
        assert not defaults.stream
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--search-backend", "fiber"])


class TestCommands:
    def test_networks_lists_table1(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "BERT-Base" in out and "XLM" in out and "Table 1" in out

    def test_compare_runs_all_methods(self, capsys):
        assert main(["compare", "ViT-B/14"]) == 0
        out = capsys.readouterr().out
        for method in ("layerwise", "flat", "mas"):
            assert method in out

    def test_limits_command(self, capsys):
        assert main(["limits"]) == 0
        assert "FLAT / MAS" in capsys.readouterr().out

    def test_table2_fast_path_with_json(self, capsys, tmp_path):
        json_path = tmp_path / "t2.json"
        code = main(
            ["table2", "--no-search", "--networks", "ViT-B/14", "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "MAS vs flat" in out
        payload = json.loads(json_path.read_text())
        assert "rows" in payload and payload["rows"]

    def test_dram_command_standard_only(self, capsys):
        code = main(["dram", "--no-search", "--networks", "ViT-B/14"])
        assert code == 0
        assert "DRAM accesses" in capsys.readouterr().out

    def test_table2_streaming_progress(self, capsys):
        code = main(
            ["table2", "--budget", "5", "--networks", "ViT-B/14", "--stream",
             "--search-workers", "2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 2" in captured.out
        assert "[1/6]" in captured.err and "[6/6]" in captured.err
        assert "cycles" in captured.err

    def test_timeline_command(self, capsys):
        code = main(["timeline", "ViT-B/14", "--methods", "flat", "mas", "--width", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "core0.mac" in out and "core0.vec" in out and "legend" in out

    def test_timeline_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["timeline", "ViT-B/14", "--methods", "warp"])

    def test_sweep_command(self, capsys):
        code = main(["sweep", "vec_throughput", "--network", "ViT-B/14", "--no-search"])
        assert code == 0
        assert "MAS speedup" in capsys.readouterr().out


class TestSuiteCli:
    def test_suite_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--suite", "table1-batched", "--batch", "8"]
        )
        assert args.suite == "table1-batched" and args.batch == 8
        defaults = build_parser().parse_args(["table3"])
        assert defaults.suite is None and defaults.batch is None
        for command in ("table2", "table3", "fig5", "fig6", "fig7", "dram"):
            parsed = build_parser().parse_args([command, "--suite", "long-context"])
            assert parsed.suite == "long-context"

    def test_suites_command_lists_builtins(self, capsys):
        assert main(["suites"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table1-batched", "cross-attention", "long-context"):
            assert name in out

    def test_suites_command_expands_a_spec(self, capsys):
        assert main(["suites", "table1@batch=8"]) == 0
        out = capsys.readouterr().out
        assert "ViT-B/14 @b8" in out and "table1@batch=8" in out

    def test_suites_command_rejects_unknown(self):
        with pytest.raises(KeyError):
            main(["suites", "table9"])

    def test_table2_suite_table1_output_identical_to_default(self, capsys):
        assert main(["table2", "--no-search", "--networks", "ViT-B/14"]) == 0
        default_out = capsys.readouterr().out
        assert main(["table2", "--no-search", "--networks", "ViT-B/14", "--suite", "table1"]) == 0
        assert capsys.readouterr().out == default_out
        assert "suite" not in default_out

    def test_table2_cross_attention_suite(self, capsys):
        code = main(["table2", "--no-search", "--suite", "cross-attention@seq<=128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sd.mid.xattn" in out and "cross-attention" in out

    def test_table2_batch_shorthand(self, capsys):
        code = main(
            ["table2", "--no-search", "--batch", "8", "--networks", "ViT-B/14 @b8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ViT-B/14 @b8" in out and "table1@batch=8" in out

    def test_streaming_works_with_suites(self, capsys):
        code = main(
            ["table2", "--no-search", "--suite", "cross-attention@seq<=128", "--stream"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[1/6]" in captured.err and "sd.mid.xattn" in captured.err
