"""Unit and integration tests for the MAS-Attention task-graph builder."""

from __future__ import annotations

import pytest

from repro.core.mas_attention import build_mas_graph, mas_max_seq_len
from repro.core.tiling import TilingConfig
from repro.sim.engine import simulate_graph
from repro.sim.executor import simulate
from repro.sim.tasks import TaskKind, mac_resource, vec_resource
from repro.utils.units import KB, MB
from repro.workloads.attention import AttentionWorkload


def tags_of(graph, kind):
    return [t for t in graph if t.kind == kind]


class TestGraphStructure:
    def test_task_counts_match_tiling(self, edge_hw, small_workload):
        tiling = TilingConfig(nq=32, nkv=32)
        graph, info = build_mas_graph(small_workload, edge_hw, tiling)
        num_blocks = tiling.num_blocks(small_workload)
        num_kv_tiles = tiling.num_kv_tiles(small_workload)
        matmuls = tags_of(graph, TaskKind.MATMUL)
        softmaxes = tags_of(graph, TaskKind.SOFTMAX)
        stores = tags_of(graph, TaskKind.STORE)
        # Two MatMul streams (QK and PV), each num_kv_tiles tiles per block.
        assert len(matmuls) == 2 * num_blocks * num_kv_tiles
        assert len(softmaxes) == num_blocks
        assert len(stores) == num_blocks        # only O is written back
        assert not info.overflowed

    def test_only_output_written_to_dram(self, edge_hw, small_workload, small_tiling):
        """Section 5.4.1: MAS writes only O back to DRAM."""
        graph, _ = build_mas_graph(small_workload, edge_hw, small_tiling)
        result = simulate(graph, edge_hw)
        assert result.dram_writes == small_workload.output_bytes

    def test_dram_reads_cover_inputs_exactly_when_resident(self, edge_hw, small_workload):
        """With resident K/V and no overwrites, reads equal Q + K + V exactly."""
        tiling = TilingConfig(nq=32, nkv=32, kv_resident=True)
        graph, info = build_mas_graph(small_workload, edge_hw, tiling)
        assert info.num_overwrites == 0
        result = simulate(graph, edge_hw)
        assert result.dram_reads == small_workload.input_bytes

    def test_softmax_on_vec_matmul_on_mac(self, edge_hw, small_workload, small_tiling):
        graph, _ = build_mas_graph(small_workload, edge_hw, small_tiling)
        assert all(".vec" in t.resource for t in tags_of(graph, TaskKind.SOFTMAX))
        assert all(".mac" in t.resource for t in tags_of(graph, TaskKind.MATMUL))

    def test_dependencies_qk_softmax_pv(self, edge_hw, tiny_workload):
        """Every softmax depends on its block's QK tiles; every PV on its softmax."""
        tiling = TilingConfig(nq=16, nkv=16)
        graph, _ = build_mas_graph(tiny_workload, edge_hw, tiling)
        by_tid = {t.tid: t for t in graph}
        for sm in tags_of(graph, TaskKind.SOFTMAX):
            dep_ops = {by_tid[d].tags.get("op") for d in sm.deps}
            assert "QK" in dep_ops
        for mm in tags_of(graph, TaskKind.MATMUL):
            if mm.tags.get("op") == "PV" and not mm.tags.get("redo"):
                dep_ops = {by_tid[d].tags.get("op") for d in mm.deps}
                assert "SM" in dep_ops

    def test_blocks_distributed_across_cores(self, edge_hw, small_workload, small_tiling):
        graph, info = build_mas_graph(small_workload, edge_hw, small_tiling)
        assert len(info.blocks_per_core) == edge_hw.num_cores
        assert all(count > 0 for count in info.blocks_per_core)
        trace = simulate_graph(graph)
        for core in range(edge_hw.num_cores):
            assert trace.busy_cycles(mac_resource(core)) > 0
            assert trace.busy_cycles(vec_resource(core)) > 0

    def test_default_tiling_used_when_none_given(self, edge_hw, small_workload):
        graph, info = build_mas_graph(small_workload, edge_hw, tiling=None)
        assert len(graph) > 0
        assert info.footprint_bytes <= edge_hw.l1_bytes


class TestMacVecOverlap:
    def test_mac_and_vec_overlap_in_time(self, edge_hw, small_workload):
        """The defining property of MAS-Attention: MatMul and softmax overlap."""
        tiling = TilingConfig(nq=32, nkv=32, kv_resident=True)
        graph, _ = build_mas_graph(small_workload, edge_hw, tiling)
        trace = simulate_graph(graph)
        overlap = trace.overlap_cycles(mac_resource(0), vec_resource(0))
        bound = min(trace.busy_cycles(mac_resource(0)), trace.busy_cycles(vec_resource(0)))
        assert overlap > 0.4 * bound

    def test_faster_than_sequential_lower_bound(self, edge_hw):
        """MAS beats the sum of MAC + VEC busy time (which FLAT cannot).

        Uses a compute-bound shape (the mandatory Q/K/V/O DRAM traffic is well
        below the compute time) so the comparison isolates the MAC/VEC overlap.
        """
        workload = AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="cb")
        tiling = TilingConfig(nq=32, nkv=64, kv_resident=True)
        graph, _ = build_mas_graph(workload, edge_hw, tiling)
        trace = simulate_graph(graph)
        serial = trace.busy_cycles(mac_resource(0)) + trace.busy_cycles(vec_resource(0))
        assert trace.total_cycles < serial


class TestOverwritePath:
    @pytest.fixture
    def overflowing(self, edge_hw):
        workload = AttentionWorkload.self_attention(heads=2, seq=1024, emb=64, name="long")
        hw = edge_hw.with_l1_bytes(384 * KB)
        tiling = TilingConfig(nq=32, nkv=128, kv_resident=True)
        return hw, workload, tiling

    def test_overwrite_adds_reload_traffic(self, overflowing):
        hw, workload, tiling = overflowing
        graph, info = build_mas_graph(workload, hw, tiling, enable_overwrite=True)
        assert info.overflowed and info.num_overwrites > 0
        assert info.extra_dram_bytes > 0
        result = simulate(graph, hw)
        assert result.dram_reads > workload.input_bytes
        # Writes stay identical to the non-overflowing case: only O.
        assert result.dram_writes == workload.output_bytes

    def test_overwrite_beats_serialization(self, overflowing):
        """With the strategy on, the overflowing schedule is faster than degrading
        the pipeline to sequential execution (the no-overwrite fallback)."""
        hw, workload, tiling = overflowing
        graph_on, info_on = build_mas_graph(workload, hw, tiling, enable_overwrite=True)
        graph_off, info_off = build_mas_graph(workload, hw, tiling, enable_overwrite=False)
        assert info_on.num_overwrites > 0
        assert info_off.num_overwrites == 0 and info_off.serialized_blocks > 0
        assert simulate(graph_on, hw).cycles < simulate(graph_off, hw).cycles

    def test_redo_tasks_follow_trigger_softmax(self, overflowing):
        """A redone MatMul tile never starts before the softmax that triggered the overwrite."""
        hw, workload, tiling = overflowing
        graph, _ = build_mas_graph(workload, hw, tiling, enable_overwrite=True)
        trace = simulate_graph(graph)
        records = {r.task.tid: r for r in trace.records}
        by_tid = {t.tid: t for t in graph}
        redo_tasks = [t for t in graph if t.tags.get("redo")]
        assert redo_tasks
        for redo in redo_tasks:
            reload_deps = [d for d in redo.deps if by_tid[d].tags.get("overwrite")]
            assert reload_deps, "every redo tile must depend on its reload"
            assert records[redo.tid].start >= max(records[d].finish for d in reload_deps)

    def test_no_overwrite_when_memory_suffices(self, edge_hw, small_workload, small_tiling):
        graph, info = build_mas_graph(small_workload, edge_hw, small_tiling, enable_overwrite=True)
        assert info.num_overwrites == 0 and info.extra_dram_bytes == 0


class TestSequenceLimits:
    def test_mas_limit_is_half_of_flat(self, edge_hw):
        """Section 5.6: two resident score rows for MAS versus one for FLAT."""
        from repro.schedulers.flat import flat_max_seq_len

        mas_limit = mas_max_seq_len(edge_hw, emb=64, dtype_bytes=2)
        flat_limit = flat_max_seq_len(edge_hw, emb=64, dtype_bytes=2)
        assert flat_limit == pytest.approx(2 * mas_limit, rel=0.01)

    def test_limits_on_paper_device_are_around_1m_and_2m(self, edge_hw):
        assert 0.9e6 < mas_max_seq_len(edge_hw) < 1.4e6
        from repro.schedulers.flat import flat_max_seq_len

        assert 1.8e6 < flat_max_seq_len(edge_hw) < 2.7e6

    def test_limit_scales_with_l1(self, edge_hw):
        bigger = edge_hw.with_l1_bytes(10 * MB)
        assert mas_max_seq_len(bigger) > mas_max_seq_len(edge_hw)

    def test_limit_zero_for_tiny_l1(self, edge_hw):
        assert mas_max_seq_len(edge_hw.with_l1_bytes(128), emb=64) == 0
