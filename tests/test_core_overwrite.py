"""Unit tests for the proactive buffer-overwrite strategy (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.costs import TileCosts, partition_blocks
from repro.core.overwrite import InfeasibleTilingError, OverwriteEvent, OverwritePlan, OverwritePlanner
from repro.core.tiling import TilingConfig
from repro.utils.units import KB, MB
from repro.workloads.attention import AttentionWorkload


@pytest.fixture
def long_workload() -> AttentionWorkload:
    """A sequence long enough that a small L1 overflows in steady state."""
    return AttentionWorkload.self_attention(heads=2, seq=1024, emb=64, name="long")


def make_planner(hw, workload, tiling, enabled=True):
    return OverwritePlanner(workload, hw, tiling, enabled=enabled)


class TestOverwriteEvent:
    def test_validation(self):
        OverwriteEvent(block_index=2, victim="K", interrupted_op="QK",
                       tiles_overwritten=1, reload_bytes=100, redo_tiles=1)
        with pytest.raises(ValueError):
            OverwriteEvent(block_index=2, victim="P", interrupted_op="QK",
                           tiles_overwritten=1, reload_bytes=100, redo_tiles=1)
        with pytest.raises(ValueError):
            OverwriteEvent(block_index=2, victim="K", interrupted_op="SM",
                           tiles_overwritten=1, reload_bytes=100, redo_tiles=1)
        with pytest.raises(ValueError):
            OverwriteEvent(block_index=2, victim="K", interrupted_op="QK",
                           tiles_overwritten=0, reload_bytes=100, redo_tiles=1)


class TestOverwritePlan:
    def test_aggregates(self):
        plan = OverwritePlan(events=[
            OverwriteEvent(2, "V", "PV", 1, 1000, 1),
            OverwriteEvent(3, "K", "QK", 2, 2000, 1),
        ])
        assert plan.num_events == 2
        assert plan.total_reload_bytes == 3000
        assert plan.total_redo_tiles == 2
        assert plan.event_for_block(3).victim == "K"
        assert plan.event_for_block(7) is None


class TestOverwritePlanner:
    def test_no_overflow_no_events(self, edge_hw, small_workload, small_tiling):
        """On the 5 MB device the small workload never overflows."""
        planner = make_planner(edge_hw, small_workload, small_tiling)
        assert planner.overflow_bytes() == 0
        costs = TileCosts(small_workload, edge_hw, small_tiling)
        blocks = partition_blocks(small_workload, small_tiling, 1)[0]
        assert planner.plan(blocks, costs).num_events == 0

    def test_overflow_produces_events(self, edge_hw, long_workload):
        hw = edge_hw.with_l1_bytes(256 * KB)
        tiling = TilingConfig(nq=32, nkv=128, kv_resident=True)
        planner = make_planner(hw, long_workload, tiling)
        assert planner.overflow_bytes() > 0
        costs = TileCosts(long_workload, hw, tiling)
        blocks = partition_blocks(long_workload, tiling, 1)[0]
        plan = planner.plan(blocks, costs)
        assert plan.num_events > 0
        assert plan.total_reload_bytes > 0

    def test_warmup_blocks_never_overwritten(self, edge_hw, long_workload):
        hw = edge_hw.with_l1_bytes(256 * KB)
        tiling = TilingConfig(nq=32, nkv=128, kv_resident=True)
        planner = make_planner(hw, long_workload, tiling)
        costs = TileCosts(long_workload, hw, tiling)
        blocks = partition_blocks(long_workload, tiling, 1)[0]
        plan = planner.plan(blocks, costs)
        assert all(e.block_index >= 2 for e in plan.events)

    def test_victims_follow_the_paper_cases(self, edge_hw, long_workload):
        """Both Figure-2 (V overwritten, PV halted) and Figure-3 (K, QK) cases occur."""
        hw = edge_hw.with_l1_bytes(256 * KB)
        tiling = TilingConfig(nq=32, nkv=128, kv_resident=True)
        planner = make_planner(hw, long_workload, tiling)
        costs = TileCosts(long_workload, hw, tiling)
        blocks = partition_blocks(long_workload, tiling, 1)[0]
        plan = planner.plan(blocks, costs)
        pairs = {(e.victim, e.interrupted_op) for e in plan.events}
        assert pairs <= {("V", "PV"), ("K", "QK")}
        assert len(pairs) == 2

    def test_disabled_planner_emits_nothing(self, edge_hw, long_workload):
        hw = edge_hw.with_l1_bytes(256 * KB)
        tiling = TilingConfig(nq=32, nkv=128, kv_resident=True)
        planner = make_planner(hw, long_workload, tiling, enabled=False)
        costs = TileCosts(long_workload, hw, tiling)
        blocks = partition_blocks(long_workload, tiling, 1)[0]
        assert planner.plan(blocks, costs).num_events == 0

    def test_infeasible_when_non_evictable_data_exceeds_l1(self, edge_hw, long_workload):
        """P_i and the score blocks cannot be evicted; if they alone overflow, fail."""
        hw = edge_hw.with_l1_bytes(64 * KB)
        tiling = TilingConfig(nq=128, nkv=128)
        planner = make_planner(hw, long_workload, tiling)
        with pytest.raises(InfeasibleTilingError):
            planner.check_feasible()

    def test_residency_accounting(self, edge_hw, small_workload):
        tiling = TilingConfig(nq=32, nkv=32, kv_resident=True)
        planner = make_planner(edge_hw, small_workload, tiling)
        assert planner.steady_state_bytes() == (
            planner.non_evictable_bytes() + planner.kv_resident_bytes()
        )
        streamed = make_planner(edge_hw, small_workload, TilingConfig(nq=32, nkv=32))
        assert streamed.kv_resident_bytes() < planner.kv_resident_bytes()
