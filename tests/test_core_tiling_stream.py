"""Unit tests for the tiling scheme (Section 4.2) and stream rounds (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.stream import OpKind, RoundKind, StreamOp, StreamSchedule, plan_rounds
from repro.core.tiling import (
    TilingConfig,
    default_tiling,
    flat_footprint_bytes,
    mas_footprint_bytes,
    operand_tile_bytes,
    score_block_bytes,
)
from repro.workloads.attention import AttentionWorkload


class TestTilingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TilingConfig(nq=0)
        with pytest.raises(ValueError):
            TilingConfig(bb=-1)

    def test_validate_for_and_clamp(self, small_workload):
        TilingConfig(nq=64, nkv=64).validate_for(small_workload)
        with pytest.raises(ValueError):
            TilingConfig(nq=4096).validate_for(small_workload)
        clamped = TilingConfig(bb=8, hh=64, nq=4096, nkv=4096).clamp_to(small_workload)
        assert clamped.bb == small_workload.batch
        assert clamped.hh == small_workload.heads
        assert clamped.nq == small_workload.seq_q
        assert clamped.nkv == small_workload.seq_kv

    def test_iteration_counts(self, small_workload):
        tiling = TilingConfig(nq=32, nkv=64)
        assert tiling.num_row_blocks(small_workload) == 4      # 128 / 32
        assert tiling.num_kv_tiles(small_workload) == 2        # 128 / 64
        assert tiling.num_head_groups(small_workload) == 4     # 4 heads, hh=1
        assert tiling.num_blocks(small_workload) == 16
        assert tiling.group_size == 1

    def test_ceil_division_of_ragged_dims(self):
        wl = AttentionWorkload(heads=3, seq_q=100, seq_kv=100, emb=16)
        tiling = TilingConfig(hh=2, nq=64, nkv=48)
        assert tiling.num_head_groups(wl) == 2
        assert tiling.num_row_blocks(wl) == 2
        assert tiling.num_kv_tiles(wl) == 3

    def test_as_dict_roundtrip(self):
        tiling = TilingConfig(bb=1, hh=2, nq=32, nkv=64, kv_resident=True)
        assert tiling.as_dict() == {"bb": 1, "hh": 2, "nq": 32, "nkv": 64, "kv_resident": True}


class TestFootprints:
    def test_operand_tile_bytes(self, small_workload):
        tiles = operand_tile_bytes(small_workload, TilingConfig(nq=32, nkv=64))
        d = small_workload.dtype_bytes
        assert tiles["q"] == 32 * small_workload.emb * d
        assert tiles["k"] == 64 * small_workload.emb * d
        assert tiles["k_full"] == small_workload.seq_kv * small_workload.emb * d
        assert tiles["o"] == tiles["q"]

    def test_score_block_spans_full_kv(self, small_workload):
        tiling = TilingConfig(nq=32, nkv=16)
        assert score_block_bytes(small_workload, tiling) == 32 * small_workload.seq_kv * 2

    def test_mas_footprint_exceeds_flat(self, small_workload, small_tiling):
        """The pipeline keeps two score blocks resident, FLAT only one (Section 5.6)."""
        assert mas_footprint_bytes(small_workload, small_tiling) > flat_footprint_bytes(
            small_workload, small_tiling
        )

    def test_kv_resident_increases_footprint(self, small_workload):
        streamed = TilingConfig(nq=32, nkv=32, kv_resident=False)
        resident = TilingConfig(nq=32, nkv=32, kv_resident=True)
        assert mas_footprint_bytes(small_workload, resident) > mas_footprint_bytes(
            small_workload, streamed
        )

    def test_footprint_monotone_in_nq(self, small_workload):
        small = mas_footprint_bytes(small_workload, TilingConfig(nq=16, nkv=32))
        large = mas_footprint_bytes(small_workload, TilingConfig(nq=64, nkv=32))
        assert large > small

    def test_default_tiling_fits_l1(self, edge_hw):
        for seq in (128, 512, 4096):
            wl = AttentionWorkload.self_attention(heads=2, seq=seq, emb=64)
            tiling = default_tiling(wl, edge_hw)
            assert mas_footprint_bytes(wl, tiling) <= edge_hw.l1_bytes


class TestStreamRounds:
    @pytest.mark.parametrize("num_blocks", [1, 2, 3, 4, 7, 16])
    def test_each_operator_appears_once_per_block(self, num_blocks):
        schedule = StreamSchedule.for_blocks(num_blocks)
        for kind in OpKind:
            blocks = [op.block for op in schedule.ops_of_kind(kind)]
            assert sorted(blocks) == list(range(1, num_blocks + 1))

    @pytest.mark.parametrize("num_blocks", [2, 3, 5, 9])
    def test_dependencies_between_rounds(self, num_blocks):
        """SM_i must come after QK_i's round; PV_i after SM_i's round (Algorithm 1)."""
        rounds = plan_rounds(num_blocks)
        round_of: dict[tuple[str, int], int] = {}
        for rnd in rounds:
            for op in rnd.mac_ops + rnd.vec_ops:
                round_of[(op.kind.value, op.block)] = rnd.index
        for block in range(1, num_blocks + 1):
            assert round_of[("QK", block)] < round_of[("SM", block)]
            assert round_of[("SM", block)] < round_of[("PV", block)]

    def test_round_kinds_structure(self):
        rounds = plan_rounds(5)
        kinds = [r.kind for r in rounds]
        assert kinds[0] == RoundKind.WARMUP and kinds[1] == RoundKind.WARMUP
        assert kinds[-1] == RoundKind.FINALIZE and kinds[-2] == RoundKind.FINALIZE
        assert all(k == RoundKind.REGULAR for k in kinds[2:-2])

    def test_regular_rounds_use_both_units(self):
        """In every regular round the MAC runs PV and QK while the VEC runs softmax."""
        for rnd in plan_rounds(6):
            if rnd.kind == RoundKind.REGULAR:
                assert {op.kind for op in rnd.mac_ops} == {OpKind.PV, OpKind.QK}
                assert {op.kind for op in rnd.vec_ops} == {OpKind.SOFTMAX}

    def test_single_block_degenerates_to_sequential(self):
        rounds = plan_rounds(1)
        assert [str(op) for r in rounds for op in r.mac_ops + r.vec_ops] == ["QK1", "SM1", "PV1"]

    def test_parallel_rounds_and_streams(self):
        schedule = StreamSchedule.for_blocks(5)
        assert len(schedule.parallel_rounds()) >= 3
        assert [str(op) for op in schedule.mac_stream()[:3]] == ["QK1", "QK2", "PV1"]
        assert [str(op) for op in schedule.vec_stream()[:2]] == ["SM1", "SM2"]

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            plan_rounds(0)

    def test_describe_mentions_units(self):
        text = plan_rounds(3)[2].describe()
        assert "MAC" in text and "VEC" in text
        assert str(StreamOp(OpKind.QK, 4)) == "QK4"
