"""mas-lint self-tests: every checker catches its seeded bad fixture, clean
fixtures pass, the real tree lints clean, and the gate semantics (suppression
tags, docs cross-check, exit codes) hold."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import lint
from repro.devtools.findings import Finding, Severity
from repro.devtools.suppress import BAD_SUPPRESSION, parse_suppressions
from repro.utils import env

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURES = TESTS_DIR / "lint_fixtures"
SRC_REPRO = REPO_ROOT / "src" / "repro"
DOCS_TABLE = REPO_ROOT / "docs" / "env_vars.md"


def run_lint(*paths, docs=DOCS_TABLE):
    return lint.lint_paths([Path(p) for p in paths], docs_path=docs)


def checks_of(result):
    return [f.check for f in result.sorted()]


# --------------------------------------------------------------------------- #
# per-checker fixtures: bad is caught, good is clean
# --------------------------------------------------------------------------- #
def test_bad_locks_fixture_caught():
    result = run_lint(FIXTURES / "bad_locks.py")
    findings = [f for f in result.sorted() if f.check == "lock-discipline"]
    assert len(findings) == 6
    messages = "\n".join(f.message for f in findings)
    assert "read of lock-guarded attribute self._counts" in messages
    assert "write to lock-guarded attribute self._counts" in messages
    assert "write to lock-guarded attribute self.total" in messages
    assert "under-lock helper self._drain_locked()" in messages
    # the keyed-lock idiom (scope contexts from a KeyedLocks pool) is
    # understood the same way: accesses outside .key()/.store() are races
    assert "read of lock-guarded attribute self._versions" in messages
    assert "write to lock-guarded attribute self._versions" in messages
    assert checks_of(result) == ["lock-discipline"] * 6


def test_bad_determinism_fixture_caught():
    result = run_lint(FIXTURES / "bad_determinism.py")
    assert checks_of(result) == ["determinism"] * 5
    messages = "\n".join(f.message for f in result.findings)
    assert "random.random()" in messages
    assert "random.gauss()" in messages
    assert "time.time()" in messages
    assert "datetime.now()" in messages
    assert "np.random.rand()" in messages


def test_bad_determinism_obs_adjacent_fixture_caught():
    """Clock reads outside ``repro/obs/`` stay flagged despite the allowlist."""
    result = run_lint(FIXTURES / "bad_determinism_obs_adjacent.py")
    assert checks_of(result) == ["determinism"] * 2
    messages = "\n".join(f.message for f in result.findings)
    assert "time.time()" in messages
    assert "time.perf_counter()" in messages


def test_determinism_obs_allowlist_is_path_scoped(tmp_path):
    """The same file copied under a ``repro/obs/`` directory lints clean —
    the allowlist is a path match, not a judgement about the code itself."""
    fixture = FIXTURES / "bad_determinism_obs_adjacent.py"
    obs_dir = tmp_path / "repro" / "obs"
    obs_dir.mkdir(parents=True)
    clone = obs_dir / "clocks.py"
    clone.write_text(fixture.read_text())
    result = run_lint(clone)
    assert not [f for f in result.findings if f.check == "determinism"], (
        result.format_human()
    )


def test_bad_forksafety_fixture_caught():
    result = run_lint(FIXTURES / "bad_forksafety.py")
    assert checks_of(result) == ["fork-safety"] * 2
    messages = "\n".join(f.message for f in result.findings)
    assert "class Holder" in messages and "connect" in messages
    assert "bound method self.step" in messages


def test_bad_env_fixture_caught():
    result = run_lint(FIXTURES / "bad_env.py")
    assert checks_of(result) == ["env-registry"] * 4
    direct = [f for f in result.findings if "direct environment read" in f.message]
    assert len(direct) == 3
    # both the literal and the module-constant indirection are resolved
    assert any("MAS" + "_FIXTURE_WORKERS" in f.message for f in direct)
    assert any("MAS_CACHE_URI" in f.message for f in direct)
    unregistered = [f for f in result.findings if "not in the repro.utils.env registry" in f.message]
    assert len(unregistered) == 1


def test_bad_hygiene_fixture_caught():
    result = run_lint(FIXTURES / "bad_hygiene.py")
    assert checks_of(result) == [
        "schema-literal",
        "schema-literal",
        "schema-literal",
        "bare-except",
        "swallowed-exception",
    ]
    what = "\n".join(f.message for f in result.findings)
    assert "schema-version comparison" in what
    assert '{"schema": <int>} literal' in what
    assert "schema= keyword" in what


def test_bad_suppression_fixture_caught():
    result = run_lint(FIXTURES / "bad_suppression.py")
    by_check = checks_of(result)
    # neither tag suppresses: both clock reads still surface
    assert by_check.count("determinism") == 2
    assert by_check.count(BAD_SUPPRESSION) == 2
    messages = "\n".join(f.message for f in result.findings)
    assert "carries no reason" in messages
    assert "unknown check 'no-such-check'" in messages


@pytest.mark.parametrize(
    "name",
    ["good_locks", "good_determinism", "good_forksafety", "good_env", "good_hygiene"],
)
def test_good_fixtures_clean(name):
    result = run_lint(FIXTURES / f"{name}.py")
    assert result.ok, result.format_human()


# --------------------------------------------------------------------------- #
# the real tree is clean, and the race checker still bites on a seeded bug
# --------------------------------------------------------------------------- #
def test_src_repro_lints_clean():
    result = run_lint(SRC_REPRO)
    assert result.ok, result.format_human()
    assert result.files_checked > 50


def test_tests_dir_lints_clean_and_skips_fixtures():
    result = run_lint(TESTS_DIR)
    assert result.ok, result.format_human()
    # discovery must not descend into the seeded-violation fixtures
    assert not any("lint_fixtures" in f.path for f in result.findings)


def test_storeservice_out_of_lock_mutation_is_caught(tmp_path):
    """Injecting an unguarded mutation into the real StoreService trips the
    race checker — the exact regression the lock-discipline check exists for."""
    source = (SRC_REPRO / "service" / "server.py").read_text()
    anchor = "    def clear(self)"
    assert anchor in source
    injected = source.replace(
        anchor,
        "    def forget(self, key):\n"
        "        self._versions.pop(key, None)\n"
        "\n" + anchor,
        1,
    )
    target = tmp_path / "server_racy.py"
    target.write_text(injected)
    result = run_lint(target)
    races = [f for f in result.findings if f.check == "lock-discipline"]
    assert len(races) == 1
    assert "self._versions" in races[0].message
    assert "forget" in races[0].message
    # the pristine source stays race-free under the same checker (the copy
    # loses its path-based determinism allowlist, so compare this check only)
    pristine = tmp_path / "server_clean.py"
    pristine.write_text(source)
    clean_result = run_lint(pristine)
    assert not [f for f in clean_result.findings if f.check == "lock-discipline"]


# --------------------------------------------------------------------------- #
# suppression semantics
# --------------------------------------------------------------------------- #
KNOWN = frozenset({"determinism", "fork-safety"})


def _finding(line, check="determinism"):
    return Finding(
        path="x.py", line=line, col=1, check=check,
        severity=Severity.ERROR, message="m",
    )


def test_same_line_tag_suppresses():
    text = "import time\nnow = time.time()  # mas-lint: disable=determinism(timing a log line)\n"
    sup = parse_suppressions("x.py", text, KNOWN)
    assert sup.findings == []
    assert sup.suppresses(_finding(2))
    assert not sup.suppresses(_finding(1))
    assert not sup.suppresses(_finding(2, check="fork-safety"))


def test_standalone_tag_covers_next_line():
    text = (
        "# mas-lint: disable=determinism(timestamp for humans)\n"
        "now = time.time()\n"
        "later = time.time()\n"
    )
    sup = parse_suppressions("x.py", text, KNOWN)
    assert sup.suppresses(_finding(2))
    assert not sup.suppresses(_finding(3))


def test_comma_separated_tags_share_a_line():
    text = "x = 1  # mas-lint: disable=determinism(why one), fork-safety(why two)\n"
    sup = parse_suppressions("x.py", text, KNOWN)
    assert sup.findings == []
    assert sup.suppresses(_finding(1, "determinism"))
    assert sup.suppresses(_finding(1, "fork-safety"))


def test_reasonless_tag_reports_and_does_not_suppress():
    text = "now = time.time()  # mas-lint: disable=determinism\n"
    sup = parse_suppressions("x.py", text, KNOWN)
    assert [f.check for f in sup.findings] == [BAD_SUPPRESSION]
    assert not sup.suppresses(_finding(1))


def test_tag_syntax_inside_strings_is_ignored():
    text = 'doc = "# mas-lint: disable=determinism(quoted, not a comment)"\n'
    sup = parse_suppressions("x.py", text, KNOWN)
    assert sup.findings == []
    assert not sup.suppresses(_finding(1))


# --------------------------------------------------------------------------- #
# env registry and the docs cross-check
# --------------------------------------------------------------------------- #
def test_env_value_precedence(monkeypatch):
    monkeypatch.delenv("MAS_SEARCH_BACKEND", raising=False)
    assert env.value("MAS_SEARCH_BACKEND") == "thread"  # registry default
    monkeypatch.setenv("MAS_SEARCH_BACKEND", "process")
    assert env.value("MAS_SEARCH_BACKEND") == "process"
    monkeypatch.setenv("MAS_SEARCH_BACKEND", "   ")  # blank == unset
    assert env.value("MAS_SEARCH_BACKEND") == "thread"


def test_env_int_value(monkeypatch):
    monkeypatch.setenv("MAS_SEARCH_WORKERS", "4")
    assert env.int_value("MAS_SEARCH_WORKERS") == 4
    monkeypatch.setenv("MAS_SEARCH_WORKERS", "four")
    with pytest.raises(ValueError, match="is not an integer"):
        env.int_value("MAS_SEARCH_WORKERS")


def test_env_unknown_name_rejected():
    with pytest.raises(KeyError):
        env.value("MAS_" + "NO_SUCH_VARIABLE")


def test_docs_table_matches_registry():
    text = DOCS_TABLE.read_text()
    assert env.render_markdown_table() in text


def test_env_docs_drift_is_flagged(tmp_path):
    docs = tmp_path / "env_vars.md"
    rows = env.render_markdown_table().splitlines()
    # drop one registered row (a variable no other row mentions), add a phantom
    dropped = [r for r in rows if not r.startswith("| `MAS_BENCH_INTRA_BUDGET` ")]
    dropped.append("| `MAS_" "PHANTOM` | *(unset)* | not actually registered |")
    docs.write_text("\n".join(dropped) + "\n")
    clean = tmp_path / "empty.py"
    clean.write_text("")
    result = run_lint(clean, docs=docs)
    messages = {f.check: f.message for f in result.findings}
    assert len(result.findings) == 2
    assert set(messages) == {"env-docs"}
    joined = "\n".join(f.message for f in result.findings)
    assert "MAS_BENCH_INTRA_BUDGET is registered" in joined
    assert "MAS_" "PHANTOM appears in the docs table" in joined


# --------------------------------------------------------------------------- #
# driver: parse errors, output formats, exit codes, CLI subcommand
# --------------------------------------------------------------------------- #
def test_parse_error_is_a_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    result = run_lint(broken)
    assert checks_of(result) == ["parse-error"]


def test_json_output_round_trips(tmp_path, capsys):
    code = lint.main([str(FIXTURES / "bad_hygiene.py"), "--format", "json",
                      "--docs", str(DOCS_TABLE)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert {f["check"] for f in payload["findings"]} == {
        "schema-literal", "bare-except", "swallowed-exception",
    }
    assert all({"path", "line", "col", "severity", "message"} <= set(f)
               for f in payload["findings"])


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint.main([str(clean), "--docs", str(DOCS_TABLE)]) == 0
    with pytest.raises(SystemExit) as excinfo:
        lint.main([str(tmp_path / "missing.py")])
    assert excinfo.value.code == 2
    capsys.readouterr()


def test_list_checks(capsys):
    assert lint.main(["--list-checks", "unused"]) == 0
    out = capsys.readouterr().out
    for check in ("lock-discipline", "determinism", "fork-safety",
                  "env-registry", "schema-literal", "bare-except",
                  "swallowed-exception", BAD_SUPPRESSION, "env-docs",
                  "parse-error"):
        assert f"{check}:" in out


def test_cli_lint_subcommand(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", str(FIXTURES / "good_hygiene.py"),
                     "--docs", str(DOCS_TABLE)]) == 0
    assert cli_main(["lint", str(FIXTURES / "bad_hygiene.py"),
                     "--docs", str(DOCS_TABLE)]) == 1
    out = capsys.readouterr().out
    assert "schema-version comparison" in out
