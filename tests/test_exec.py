"""Tests for the execution layer: pair workers, parallel runner, result cache."""

from __future__ import annotations

import json

import pytest

from repro.analysis import run_table2
from repro.exec import (
    ExperimentRunner,
    ParallelRunner,
    PairSpec,
    ResultCache,
    execute_pair,
    pair_seed,
    tuning_cache_key,
)
from repro.hardware.presets import davinci_like_npu, simulated_edge_device
from repro.search.autotuner import AutoTuner
from repro.workloads.attention import AttentionWorkload
from repro.workloads.networks import get_network

FAST_NETWORKS = ["ViT-B/14", "ViT-B/16"]
FAST_METHODS = ["flat", "mas"]
BUDGET = 6


@pytest.fixture
def workload():
    return AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="exec-wl")


@pytest.fixture
def tuning(edge_hw, workload):
    return AutoTuner(edge_hw, budget=10, seed=3).tune("mas", workload)


class TestPairSeed:
    def test_deterministic_and_decorrelated(self):
        assert pair_seed(0, "mas", "ViT-B/14") == pair_seed(0, "mas", "ViT-B/14")
        seeds = {
            pair_seed(base, method, network)
            for base in (0, 1)
            for method in FAST_METHODS
            for network in FAST_NETWORKS
        }
        assert len(seeds) == 8  # every (base, pair) combination gets its own seed

    def test_execute_pair_standalone_matches_runner(self, edge_hw):
        spec = PairSpec(hardware=edge_hw, method="mas", network="ViT-B/14", budget=BUDGET)
        run = execute_pair(spec)
        runner = ExperimentRunner(hardware=edge_hw, search_budget=BUDGET)
        assert run.cycles == runner.run("mas", "ViT-B/14").cycles


class TestParallelMatchesSerial:
    def test_parallel_matrix_identical_to_serial(self):
        serial = ExperimentRunner(search_budget=BUDGET, seed=0)
        parallel = ParallelRunner(search_budget=BUDGET, seed=0, jobs=2)
        serial_matrix = serial.run_matrix(FAST_NETWORKS, FAST_METHODS)
        parallel_matrix = parallel.run_matrix(FAST_NETWORKS, FAST_METHODS)
        assert set(serial_matrix) == set(parallel_matrix)
        for network in serial_matrix:
            for method in serial_matrix[network]:
                a = serial_matrix[network][method]
                b = parallel_matrix[network][method]
                assert a.cycles == b.cycles
                assert a.energy_pj == b.energy_pj
                assert a.tuning.best_tiling == b.tuning.best_tiling
                assert a.tuning.best_value == b.tuning.best_value

    def test_jobs_one_takes_serial_path(self):
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=1)
        matrix = runner.run_matrix(["ViT-B/14"], FAST_METHODS)
        assert matrix["ViT-B/14"]["mas"].cycles > 0

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_memoized_runs_are_not_resubmitted(self):
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=2)
        first = runner.run("mas", "ViT-B/14")
        matrix = runner.run_matrix(["ViT-B/14"], FAST_METHODS)
        assert matrix["ViT-B/14"]["mas"] is first

    def test_search_workers_bit_identical_through_runner(self):
        serial = ExperimentRunner(search_budget=BUDGET, seed=0)
        workered = ExperimentRunner(search_budget=BUDGET, seed=0, search_workers=2)
        for method, network in [("mas", "ViT-B/14"), ("flat", "ViT-B/16")]:
            a = serial.run(method, network)
            b = workered.run(method, network)
            assert a.cycles == b.cycles and a.energy_pj == b.energy_pj
            assert a.tuning.best_tiling == b.tuning.best_tiling
            assert a.tuning.objective_evaluations == b.tuning.objective_evaluations
            assert [r.value for r in a.tuning.history.records] == [
                r.value for r in b.tuning.history.records
            ]


def _run_keys(runs) -> set[tuple[str, str, int]]:
    return {(r.scheduler, r.network, r.cycles) for r in runs}


def _matrix_keys(matrix) -> set[tuple[str, str, int]]:
    return {
        (run.scheduler, run.network, run.cycles)
        for runs in matrix.values()
        for run in runs.values()
    }


class TestIterMatrix:
    """Streaming yields exactly the pairs ``run_matrix`` materializes."""

    def test_serial_streaming_matches_matrix_in_table_order(self):
        runner = ExperimentRunner(search_budget=BUDGET, seed=0)
        runs = list(runner.iter_matrix(FAST_NETWORKS, FAST_METHODS))
        assert [(r.scheduler, r.network) for r in runs] == [
            (method, network) for network in FAST_NETWORKS for method in FAST_METHODS
        ]
        matrix = runner.run_matrix(FAST_NETWORKS, FAST_METHODS)
        assert _run_keys(runs) == _matrix_keys(matrix)

    @pytest.mark.parametrize("stream", [True, False])
    def test_parallel_streaming_matches_serial_matrix(self, stream):
        serial = ExperimentRunner(search_budget=BUDGET, seed=0)
        reference = _matrix_keys(serial.run_matrix(FAST_NETWORKS, FAST_METHODS))
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=2)
        runs = list(runner.iter_matrix(FAST_NETWORKS, FAST_METHODS, stream=stream))
        assert _run_keys(runs) == reference
        if not stream:  # the fallback preserves Table-1 order
            assert [(r.scheduler, r.network) for r in runs] == [
                (method, network) for network in FAST_NETWORKS for method in FAST_METHODS
            ]
        # every streamed run is memoized: the matrix afterwards is free
        assert _matrix_keys(runner.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference

    def test_streaming_yields_memoized_runs_first(self):
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=2)
        first = runner.run("mas", "ViT-B/14")
        runs = list(runner.iter_matrix(FAST_NETWORKS, FAST_METHODS, stream=True))
        assert runs[0] is first  # memoized pair streams before the pool finishes
        assert len(runs) == len(FAST_NETWORKS) * len(FAST_METHODS)

    def test_jobs_one_streams_serially(self):
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=1)
        runs = list(runner.iter_matrix(["ViT-B/14"], FAST_METHODS))
        assert [(r.scheduler, r.network) for r in runs] == [
            (method, "ViT-B/14") for method in FAST_METHODS
        ]

    def test_abandoned_stream_cancels_pending_pairs(self):
        """Breaking out of the stream must not block on the whole matrix,
        and the abandoned pairs remain computable afterwards."""
        runner = ParallelRunner(search_budget=BUDGET, seed=0, jobs=2)
        iterator = runner.iter_matrix(FAST_NETWORKS, FAST_METHODS, stream=True)
        first = next(iterator)
        iterator.close()  # not-yet-started pairs are cancelled, not awaited
        assert first.cycles > 0
        serial = ExperimentRunner(search_budget=BUDGET, seed=0)
        reference = _matrix_keys(serial.run_matrix(FAST_NETWORKS, FAST_METHODS))
        assert _matrix_keys(runner.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference

    def test_search_workers_and_backend_validated_eagerly(self):
        with pytest.raises(ValueError):
            ExperimentRunner(search_workers=0)
        with pytest.raises(ValueError):
            ExperimentRunner(search_backend="fiber")


class TestResultCache:
    def test_round_trips_tuning_result(self, tmp_path, edge_hw, workload, tuning):
        cache = ResultCache(tmp_path)
        key = tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 3)
        assert cache.load(key) is None and cache.misses == 1
        cache.store(key, tuning)
        assert len(cache) == 1

        loaded = cache.load(key)
        assert cache.hits == 1
        assert loaded.scheduler == tuning.scheduler
        assert loaded.workload == tuning.workload
        assert loaded.strategy == tuning.strategy
        assert loaded.best_tiling == tuning.best_tiling
        assert loaded.best_value == tuning.best_value
        assert loaded.budget == tuning.budget == 10
        assert loaded.objective_evaluations == tuning.objective_evaluations
        assert loaded.objective_evaluations is not None
        assert loaded.num_evaluations == tuning.num_evaluations
        assert loaded.num_search_evaluations == tuning.num_search_evaluations
        assert loaded.improvement_factor == tuning.improvement_factor
        assert loaded.history.algorithm == tuning.history.algorithm
        assert loaded.history.convergence_curve() == tuning.history.convergence_curve()
        for got, want in zip(loaded.history.records, tuning.history.records):
            assert (got.iteration, got.tiling, got.value, got.best_value, got.phase) == (
                want.iteration,
                want.tiling,
                want.value,
                want.best_value,
                want.phase,
            )
        assert loaded.history.best.tiling == tuning.history.best.tiling
        assert loaded.history.best.cycles == tuning.history.best.cycles
        assert loaded.history.best.energy_pj == tuning.history.best.energy_pj

    def test_key_changes_with_every_tuning_parameter(self, edge_hw, workload):
        base = tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 0)
        variants = [
            tuning_cache_key(edge_hw, "flat", workload, "mcts+ga", 10, "cycles", 0),
            tuning_cache_key(edge_hw, "mas", workload.with_seq(128), "mcts+ga", 10, "cycles", 0),
            tuning_cache_key(edge_hw, "mas", workload, "random", 10, "cycles", 0),
            tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 11, "cycles", 0),
            tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "energy", 0),
            tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 1),
            tuning_cache_key(
                edge_hw.with_l1_bytes(edge_hw.l1_bytes // 2),
                "mas", workload, "mcts+ga", 10, "cycles", 0,
            ),
            tuning_cache_key(
                davinci_like_npu(), "mas", workload, "mcts+ga", 10, "cycles", 0
            ),
            tuning_cache_key(
                edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 0,
                analytic_prune=True,
            ),
        ]
        assert base == tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 0)
        assert len({base, *variants}) == len(variants) + 1

    def test_disabled_cache_is_inert(self, tmp_path, tuning):
        for cache in (ResultCache(None), ResultCache(tmp_path, enabled=False)):
            assert cache.store("k", tuning) is None
            assert cache.load("k") is None
            assert len(cache) == 0 and cache.hits == 0

    def test_corrupt_entry_is_a_miss_but_stale_is_counted(self, tmp_path, tuning):
        cache = ResultCache(tmp_path)
        cache.store("k", tuning)
        (tmp_path / "k.json").write_text("not json at all")
        assert cache.load("k") is None  # unparseable garbage: a plain miss
        stale = {"schema": 99, "key": "k2", "tuning": {}}
        (tmp_path / "k2.json").write_text(json.dumps(stale))
        assert cache.load("k2") is None  # unknown schema: stale, not a miss
        assert cache.misses == 1
        assert cache.stale == 1
        assert cache.stats() == {"hits": 0, "misses": 1, "stale": 1}

    def test_clear(self, tmp_path, tuning):
        cache = ResultCache(tmp_path)
        cache.store("a", tuning)
        cache.store("b", tuning)
        assert cache.clear() == 2 and len(cache) == 0


class TestWarmCacheSweep:
    def test_second_table2_invocation_performs_no_search(self, tmp_path):
        kwargs = dict(search_budget=5, seed=0, cache_dir=tmp_path / "cache")
        cold_runner = ExperimentRunner(**kwargs)
        cold = run_table2(cold_runner, networks=["ViT-B/14"])
        cold_stats = cold_runner.cache_stats()
        assert cold_stats["cache_hits"] == 0
        assert cold_stats["searches"] == 5  # fusemax is not searchable
        assert cold_stats["search_evaluations"] > 0

        warm_runner = ExperimentRunner(**kwargs)
        warm = run_table2(warm_runner, networks=["ViT-B/14"])
        warm_stats = warm_runner.cache_stats()
        assert warm_stats["cache_hits"] == 5
        assert warm_stats["searches"] == 0
        assert warm_stats["search_evaluations"] == 0
        assert all(
            run.cached
            for runs in warm_runner.run_matrix(["ViT-B/14"]).values()
            for run in runs.values()
            if run.tuned
        )
        assert warm.row("ViT-B/14").cycles == cold.row("ViT-B/14").cycles

    def test_pruned_tunings_never_share_cache_entries_with_exact(
        self, tmp_path, monkeypatch
    ):
        # A tuning searched under bound pruning saw bound values instead of
        # simulations for pruned candidates, so it must be keyed as a separate
        # variant: warming the cache in one mode must not serve the other.
        kwargs = dict(search_budget=5, seed=0, cache_dir=tmp_path / "cache")
        monkeypatch.setenv("MAS_ANALYTIC_PRUNE", "0")
        exact_runner = ExperimentRunner(**kwargs)
        run_table2(exact_runner, networks=["ViT-B/14"])
        assert exact_runner.cache_stats()["cache_hits"] == 0

        monkeypatch.setenv("MAS_ANALYTIC_PRUNE", "1")
        pruned_runner = ExperimentRunner(**kwargs)
        run_table2(pruned_runner, networks=["ViT-B/14"])
        pruned_stats = pruned_runner.cache_stats()
        assert pruned_stats["cache_hits"] == 0
        assert pruned_stats["searches"] == 5

        # Each mode is a warm hit for itself.
        pruned_warm = ExperimentRunner(**kwargs)
        run_table2(pruned_warm, networks=["ViT-B/14"])
        assert pruned_warm.cache_stats()["cache_hits"] == 5

        monkeypatch.setenv("MAS_ANALYTIC_PRUNE", "0")
        exact_warm = ExperimentRunner(**kwargs)
        run_table2(exact_warm, networks=["ViT-B/14"])
        assert exact_warm.cache_stats()["cache_hits"] == 5

    def test_no_cache_flag_disables_persistence(self, tmp_path):
        runner = ExperimentRunner(
            search_budget=5, cache_dir=tmp_path / "cache", use_cache=False
        )
        runner.run("mas", "ViT-B/14")
        assert not (tmp_path / "cache").exists()


class TestRunnerSubsets:
    def test_networks_rejects_unknown_names(self):
        runner = ExperimentRunner(use_search=False)
        with pytest.raises(KeyError):
            runner.networks(["NotANetwork"])

    def test_networks_dedupes_and_orders_canonically(self):
        runner = ExperimentRunner(use_search=False)
        subset = runner.networks(["ViT-B/16", "vit-b/14", "ViT-B/16"])
        assert subset == ["ViT-B/14", "ViT-B/16"]

    def test_run_canonicalizes_network_names(self):
        runner = ExperimentRunner(use_search=False)
        assert runner.run("mas", "vit-b/14") is runner.run("mas", "ViT-B/14")
        assert runner.run("mas", "ViT-B/14").network == get_network("ViT-B/14").name

    def test_run_canonicalizes_method_names(self):
        """'MAS' and 'mas' are one pair: same memo entry, seed and result."""
        runner = ExperimentRunner(search_budget=BUDGET, seed=0)
        upper = runner.run("MAS", "ViT-B/14")
        assert upper is runner.run("mas", "ViT-B/14")
        assert upper.scheduler == "mas"
        spec_upper = runner.pair_spec("MAS", "ViT-B/14")
        assert execute_pair(spec_upper).cycles == upper.cycles


def test_parallel_runner_defaults_match_experiment_runner():
    serial = ExperimentRunner()
    parallel = ParallelRunner()
    assert parallel.hardware == simulated_edge_device()
    assert parallel.search_budget == serial.search_budget
    assert parallel.jobs == 1


class TestSuiteSweeps:
    """The suite-parametrized sweep matrix (see the ``sweep_suite`` fixture)."""

    def test_runner_sweeps_suite_deterministically(self, sweep_suite):
        from repro.workloads.suites import get_suite

        subset = get_suite(sweep_suite).entry_names()[:2]
        first = ExperimentRunner(suite=sweep_suite, search_budget=4, seed=0)
        again = ExperimentRunner(suite=get_suite(sweep_suite), search_budget=4, seed=0)
        matrix = first.run_matrix(subset, FAST_METHODS)
        repeat = again.run_matrix(subset, FAST_METHODS)
        assert set(matrix) == set(subset)
        for entry in matrix:
            for method in FAST_METHODS:
                a, b = matrix[entry][method], repeat[entry][method]
                assert a.cycles == b.cycles > 0
                assert a.energy_pj == b.energy_pj
                assert a.network == entry
                if a.tuned:
                    assert a.tuning.best_tiling == b.tuning.best_tiling

    def test_parallel_matches_serial_on_suite(self, sweep_suite):
        from repro.workloads.suites import get_suite

        subset = get_suite(sweep_suite).entry_names()[:2]
        serial = ExperimentRunner(suite=sweep_suite, search_budget=4, seed=0)
        parallel = ParallelRunner(suite=sweep_suite, search_budget=4, seed=0, jobs=2)
        assert _matrix_keys(serial.run_matrix(subset, FAST_METHODS)) == _matrix_keys(
            parallel.run_matrix(subset, FAST_METHODS)
        )

    def test_suite_workloads_reach_the_simulation(self, sweep_suite):
        """The simulated DRAM traffic scales with the suite entry's shape —
        proof the entry workload (not a Table-1 default) was executed."""
        runner = ExperimentRunner(suite=sweep_suite, use_search=False)
        entry = runner.networks()[0]
        workload = runner.workload_for(entry)
        run = runner.run("flat", entry)
        assert run.result.dram_reads >= workload.input_bytes

    def test_table1_suite_reproduces_table1_ordering(self):
        from repro.workloads.networks import list_networks

        assert ExperimentRunner().networks() == list_networks()
        assert ExperimentRunner(suite="table1").networks() == list_networks()
        default = ExperimentRunner(search_budget=BUDGET, seed=0)
        named = ExperimentRunner(suite="table1", search_budget=BUDGET, seed=0)
        assert _matrix_keys(default.run_matrix(FAST_NETWORKS, FAST_METHODS)) == _matrix_keys(
            named.run_matrix(FAST_NETWORKS, FAST_METHODS)
        )

    def test_bad_suite_spec_fails_eagerly(self):
        with pytest.raises(ValueError):
            ExperimentRunner(suite="table1@heads=4")
        with pytest.raises(KeyError):
            ExperimentRunner(suite="table9")


class TestSuiteCacheKeys:
    def test_key_sensitive_to_batch_and_seq_kv(self, edge_hw, workload):
        """Entries differing only in batch, or only in seq_kv, never collide."""
        base = tuning_cache_key(edge_hw, "mas", workload, "mcts+ga", 10, "cycles", 0)
        variants = [
            tuning_cache_key(
                edge_hw, "mas", workload.with_batch(8), "mcts+ga", 10, "cycles", 0
            ),
            tuning_cache_key(
                edge_hw,
                "mas",
                workload.with_seq(workload.seq_q, 2 * workload.seq_kv),
                "mcts+ga", 10, "cycles", 0,
            ),
        ]
        assert len({base, *variants}) == 3

    def test_identical_shapes_across_suites_share_key(self, edge_hw):
        """table1@batch=8 and the batch-8 third of table1-batched are the
        same entries, so their cache keys coincide (cross-suite reuse)."""
        from repro.workloads.suites import get_suite

        a = get_suite("table1@batch=8").get_entry("ViT-B/14 @b8").workload
        b = get_suite("table1-batched").get_entry("ViT-B/14 @b8").workload
        key = tuning_cache_key(edge_hw, "mas", a, "mcts+ga", 10, "cycles", 0)
        assert key == tuning_cache_key(edge_hw, "mas", b, "mcts+ga", 10, "cycles", 0)

    def test_cross_suite_cache_reuse_end_to_end(self, tmp_path):
        """A pair tuned under one suite is a warm hit under another suite
        that derives the same entry."""
        kwargs = dict(search_budget=3, seed=0, cache_dir=tmp_path / "cache")
        spec_runner = ExperimentRunner(suite="table1@batch=8", **kwargs)
        cold = spec_runner.run("mas", "ViT-B/14 @b8")
        assert cold.tuned and not cold.cached

        batched_runner = ParallelRunner(suite="table1-batched", jobs=2, **kwargs)
        warm = batched_runner.run("mas", "ViT-B/14 @b8")
        assert warm.cached
        assert warm.cycles == cold.cycles
        assert warm.tuning.best_tiling == cold.tuning.best_tiling

    def test_pair_seed_uses_entry_name(self):
        """Distinct suite entries search with decorrelated seeds even when
        they share a base network."""
        assert pair_seed(0, "mas", "ViT-B/14") != pair_seed(0, "mas", "ViT-B/14 @b8")

    def test_pair_spec_carries_entry_workload(self):
        runner = ExperimentRunner(suite="cross-attention", use_search=False)
        spec = runner.pair_spec("mas", "sd.mid.xattn")
        assert spec.workload == runner.workload_for("sd.mid.xattn")
        assert spec.workload.seq_q != spec.workload.seq_kv
        run = execute_pair(spec)
        assert run.network == "sd.mid.xattn"
