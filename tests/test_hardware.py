"""Unit tests for :mod:`repro.hardware` (config, cost models, energy, buffer, presets)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.buffer import BufferManager, BufferOverflowError
from repro.hardware.compute_units import (
    elementwise_cycles,
    elementwise_vec_ops,
    matmul_cycles,
    matmul_macs,
    softmax_cycles,
    softmax_vec_ops,
)
from repro.hardware.config import (
    DmaSpec,
    HardwareConfig,
    MacUnitSpec,
    MemoryLevelSpec,
    VecUnitSpec,
)
from repro.hardware.energy import AccessCounters, EnergyBreakdown, EnergyModel
from repro.hardware.memory import MemoryHierarchy, dma_cycles
from repro.hardware.presets import (
    PRESETS,
    constrained_edge_device,
    davinci_like_npu,
    get_preset,
    simulated_edge_device,
)
from repro.utils.units import GHZ, KB, MB


class TestSpecs:
    def test_mac_spec_derived_properties(self):
        spec = MacUnitSpec(rows=16, cols=16)
        assert spec.num_pes == 256
        assert spec.peak_macs_per_cycle == 256

    def test_mac_spec_validation(self):
        with pytest.raises(ValueError):
            MacUnitSpec(rows=0)
        with pytest.raises(ValueError):
            MacUnitSpec(fill_overhead_cycles=-1)

    def test_vec_spec_validation(self):
        with pytest.raises(ValueError):
            VecUnitSpec(lanes=0)
        with pytest.raises(ValueError):
            VecUnitSpec(throughput_ops_per_cycle=0)

    def test_memory_level_validation(self):
        with pytest.raises(ValueError):
            MemoryLevelSpec(name="", size_bytes=1, read_pj_per_byte=1, write_pj_per_byte=1,
                            bandwidth_bytes_per_cycle=1)
        with pytest.raises(ValueError):
            MemoryLevelSpec(name="L1", size_bytes=1, read_pj_per_byte=1, write_pj_per_byte=1,
                            bandwidth_bytes_per_cycle=0)

    def test_dma_spec_validation(self):
        with pytest.raises(ValueError):
            DmaSpec(bytes_per_cycle=0)
        with pytest.raises(ValueError):
            DmaSpec(setup_cycles=-1)


class TestHardwareConfig:
    def test_paper_defaults(self, edge_hw):
        """Defaults match the Section 5.1 simulated architecture."""
        assert edge_hw.frequency_hz == pytest.approx(3.75 * GHZ)
        assert edge_hw.num_cores == 2
        assert edge_hw.mac.rows == 16 and edge_hw.mac.cols == 16
        assert edge_hw.vec.lanes == 256
        assert edge_hw.l1_bytes == 5 * MB
        assert edge_hw.dram.size_bytes == 6 * 1024 * MB

    def test_with_l1_and_with_cores(self, edge_hw):
        shrunk = edge_hw.with_l1_bytes(256 * KB)
        assert shrunk.l1_bytes == 256 * KB
        assert shrunk.dram == edge_hw.dram
        assert edge_hw.l1_bytes == 5 * MB  # original untouched (frozen dataclass)
        quad = edge_hw.with_cores(4)
        assert quad.num_cores == 4
        assert quad.core_names() == ["core0", "core1", "core2", "core3"]

    def test_peak_macs(self, edge_hw):
        assert edge_hw.peak_macs_per_cycle == 2 * 256

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(num_cores=0)
        with pytest.raises(ValueError):
            HardwareConfig(frequency_hz=0)


class TestComputeCosts:
    def test_matmul_macs(self):
        assert matmul_macs(4, 8, 2) == 64
        with pytest.raises(ValueError):
            matmul_macs(0, 1, 1)

    def test_matmul_cycles_scales_with_passes(self):
        spec = MacUnitSpec(rows=16, cols=16, fill_overhead_cycles=0)
        base = matmul_cycles(spec, 16, 64, 16)
        assert base == 64
        # Four output tiles -> four passes.
        assert matmul_cycles(spec, 32, 64, 32) == 4 * base

    def test_matmul_cycles_fill_overhead(self):
        without = matmul_cycles(MacUnitSpec(fill_overhead_cycles=0), 16, 64, 16)
        with_overhead = matmul_cycles(MacUnitSpec(fill_overhead_cycles=16), 16, 64, 16)
        assert with_overhead == without + 16

    def test_softmax_cycles_row_structure(self):
        spec = VecUnitSpec(throughput_ops_per_cycle=32, softmax_ops_per_element=16,
                           row_overhead_cycles=8)
        one_row = softmax_cycles(spec, 1, 64)
        assert one_row == 64 * 16 // 32 + 8
        assert softmax_cycles(spec, 10, 64) == 10 * one_row

    def test_softmax_vec_ops(self):
        spec = VecUnitSpec(softmax_ops_per_element=18)
        assert softmax_vec_ops(4, 32, spec) == 4 * 32 * 18

    def test_elementwise(self):
        spec = VecUnitSpec(throughput_ops_per_cycle=8)
        assert elementwise_cycles(spec, 64, 2) == 16
        assert elementwise_vec_ops(64, 2) == 128


class TestMemory:
    def test_dma_cycles_bandwidth_and_setup(self, edge_hw):
        assert dma_cycles(edge_hw, 0) == 0
        expected = 8192 // int(edge_hw.dma.bytes_per_cycle) + edge_hw.dma.setup_cycles
        assert dma_cycles(edge_hw, 8192) == expected

    def test_dma_cycles_fractional_bandwidth(self):
        hw = HardwareConfig(dma=DmaSpec(bytes_per_cycle=0.5, setup_cycles=0))
        assert dma_cycles(hw, 100) == 200

    def test_dma_cycles_rejects_negative(self, edge_hw):
        with pytest.raises(ValueError):
            dma_cycles(edge_hw, -1)

    def test_hierarchy_lookup(self, edge_hw):
        hier = MemoryHierarchy(edge_hw)
        assert hier.level_by_name("l1").name == "L1"
        assert [lvl.name for lvl in hier.levels()] == ["DRAM", "L1", "L0"]
        assert hier.fits_in_l1(4 * MB)
        assert not hier.fits_in_l1(6 * MB)
        with pytest.raises(KeyError):
            hier.level_by_name("L7")


class TestEnergy:
    def test_counters_add(self):
        a = AccessCounters(dram_bytes_read=10, mac_ops=5, total_cycles=100)
        b = AccessCounters(dram_bytes_read=20, vec_ops=7, total_cycles=50)
        c = a + b
        assert c.dram_bytes_read == 30
        assert c.mac_ops == 5 and c.vec_ops == 7
        assert c.total_cycles == 100  # max, not sum
        assert c.dram_bytes_total == 30

    def test_counters_reject_negative(self):
        with pytest.raises(ValueError):
            AccessCounters(dram_bytes_read=-1)

    def test_energy_model_linear_in_counters(self, edge_hw):
        model = EnergyModel(edge_hw)
        counters = AccessCounters(
            dram_bytes_read=1000, dram_bytes_written=500,
            l1_bytes_read=2000, l1_bytes_written=2000,
            l0_bytes_read=100, l0_bytes_written=100,
            mac_ops=10_000, vec_ops=5_000, total_cycles=1_000,
        )
        breakdown = model.compute(counters)
        assert breakdown.dram_pj == pytest.approx(
            1000 * edge_hw.dram.read_pj_per_byte + 500 * edge_hw.dram.write_pj_per_byte
        )
        assert breakdown.mac_pe_pj == pytest.approx(10_000 * edge_hw.mac_pj_per_op)
        assert breakdown.leakage_pj == pytest.approx(1_000 * edge_hw.leakage_pj_per_cycle)
        assert breakdown.total_pj == pytest.approx(
            breakdown.dram_pj + breakdown.l1_pj + breakdown.l0_pj
            + breakdown.mac_pe_pj + breakdown.vec_pe_pj + breakdown.leakage_pj
        )

    def test_breakdown_views(self):
        b = EnergyBreakdown(dram_pj=1, l1_pj=2, l0_pj=3, mac_pe_pj=4, vec_pe_pj=5, leakage_pj=6)
        assert b.onchip_memory_pj == 5
        assert b.pe_pj == 9
        assert b.as_dict()["total"] == pytest.approx(21)


class TestBufferManager:
    def test_alloc_free_accounting(self):
        buf = BufferManager(capacity_bytes=1000)
        buf.alloc("K", 400)
        buf.alloc("V", 400, evictable=True)
        assert buf.used_bytes == 800 and buf.free_bytes == 200
        assert buf.contains("K") and buf.resident_names() == ["K", "V"]
        buf.free("K")
        assert buf.used_bytes == 400
        with pytest.raises(KeyError):
            buf.free("K")
        assert buf.free_if_present("V") and not buf.free_if_present("V")

    def test_duplicate_allocation_rejected(self):
        buf = BufferManager(capacity_bytes=100)
        buf.alloc("X", 10)
        with pytest.raises(ValueError):
            buf.alloc("X", 10)

    def test_oversized_allocation_rejected(self):
        buf = BufferManager(capacity_bytes=100)
        with pytest.raises(BufferOverflowError):
            buf.alloc("huge", 101)

    def test_eviction_frees_space_and_records_events(self):
        buf = BufferManager(capacity_bytes=1000)
        buf.alloc("K", 600, evictable=True, tag="kv")
        buf.alloc("Q", 300)
        events = buf.alloc("P", 500)
        assert [e.victim for e in events] == ["K"]
        assert buf.contains("P") and not buf.contains("K")
        assert buf.evictions[0].requested_by == "P"
        assert buf.evictions[0].tag == "kv"

    def test_eviction_disabled_raises(self):
        buf = BufferManager(capacity_bytes=1000)
        buf.alloc("K", 600, evictable=True)
        with pytest.raises(BufferOverflowError):
            buf.alloc("P", 500, allow_evict=False)

    def test_eviction_insufficient_raises(self):
        buf = BufferManager(capacity_bytes=1000)
        buf.alloc("K", 200, evictable=True)
        buf.alloc("Q", 700)
        with pytest.raises(BufferOverflowError):
            buf.alloc("P", 400)

    def test_explicit_evict_and_reset(self):
        buf = BufferManager(capacity_bytes=100)
        buf.alloc("A", 50)
        event = buf.evict("A", requested_by="test")
        assert event.num_bytes == 50
        with pytest.raises(KeyError):
            buf.evict("A")
        buf.alloc("B", 10)
        buf.reset()
        assert buf.used_bytes == 0 and buf.evictions == []


class TestPresets:
    def test_registry_contents(self):
        assert set(PRESETS) == {"edge-sim", "davinci-like", "edge-constrained"}
        for name in PRESETS:
            assert isinstance(get_preset(name), HardwareConfig)
        with pytest.raises(KeyError):
            get_preset("tpu-v5")

    def test_simulated_edge_matches_default(self):
        assert simulated_edge_device() == HardwareConfig(name="edge-sim")

    def test_davinci_preset_differs(self):
        davinci = davinci_like_npu()
        assert davinci.num_cores == 3
        assert davinci.l1_bytes < simulated_edge_device().l1_bytes
        assert davinci.frequency_hz < simulated_edge_device().frequency_hz

    def test_constrained_preset_shrinks_l1_only(self):
        constrained = constrained_edge_device(128 * KB)
        assert constrained.l1_bytes == 128 * KB
        assert constrained.mac == simulated_edge_device().mac

    def test_presets_are_fresh_instances(self):
        a, b = simulated_edge_device(), simulated_edge_device()
        assert a == b
        assert dataclasses.replace(a, num_cores=4) != b
