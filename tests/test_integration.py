"""End-to-end integration tests: tune, simulate, analyse, and cross-check layers.

These tests tie the layers together the same way the benchmark harness does,
on reduced shapes: the search produces a tiling, the scheduler builds a graph,
the simulator runs it, the analysis reshapes the results — and the numerical
executors confirm the dataflow computes exact attention for the very tiling
the search selected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import quick_compare
from repro.analysis import ExperimentRunner, run_table2, run_table3
from repro.hardware.presets import davinci_like_npu, simulated_edge_device
from repro.numerics.golden import golden_check
from repro.numerics.reference import reference_attention
from repro.numerics.tiled import mas_attention
from repro.numerics.golden import make_qkv
from repro.schedulers import make_scheduler
from repro.search import AutoTuner
from repro.workloads.attention import AttentionWorkload


@pytest.fixture(scope="module")
def workload():
    return AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="e2e")


class TestQuickstartPath:
    def test_quick_compare_returns_all_methods(self):
        rows = quick_compare("ViT-B/14")
        assert [r["scheduler"] for r in rows] == [
            "layerwise", "softpipe", "flat", "tileflow", "fusemax", "mas",
        ]
        fastest = min(rows, key=lambda r: r["cycles"])
        assert fastest["scheduler"] == "mas"

    def test_quick_compare_on_davinci_preset(self):
        rows = quick_compare("ViT-B/14", hardware=davinci_like_npu(), schedulers=["flat", "mas"])
        assert len(rows) == 2 and rows[0]["hardware"] == "davinci-like"


class TestTuneSimulateValidate:
    def test_searched_tiling_is_exact_and_faster(self, workload):
        """The tiling the search picks is numerically exact and no slower than default."""
        hw = simulated_edge_device()
        scheduler = make_scheduler("mas", hw)
        tuning = AutoTuner(hw, budget=25, seed=1).tune(scheduler, workload)
        tuned_cycles = scheduler.simulate(workload, tuning.best_tiling).cycles
        default_cycles = scheduler.simulate(workload).cycles
        assert tuned_cycles <= default_cycles

        q, k, v = make_qkv(workload, seed=3, dtype=np.float64)
        out = mas_attention(q, k, v, nq=tuning.best_tiling.nq, nkv=tuning.best_tiling.nkv)
        np.testing.assert_allclose(out, reference_attention(q, k, v), rtol=1e-6, atol=1e-8)

    def test_golden_check_for_searched_tilings_of_all_methods(self, workload):
        hw = simulated_edge_device()
        tuner = AutoTuner(hw, budget=10, seed=0)
        small = AttentionWorkload.self_attention(heads=2, seq=96, emb=16, name="golden-e2e")
        for name in ("flat", "mas"):
            tiling = tuner.tune(name, small).best_tiling
            result = golden_check(small, tiling=tiling)
            assert result.passed, result.summary()


class TestAnalysisConsistency:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(use_search=False)

    def test_table2_and_table3_share_runs(self, runner):
        networks = ["ViT-B/14"]
        t2 = run_table2(runner, networks=networks)
        t3 = run_table3(runner, networks=networks)
        run = runner.run("mas", "ViT-B/14")
        assert t2.row("ViT-B/14").cycles["mas"] == run.cycles
        assert t3.row("ViT-B/14").energy_pj["mas"] == pytest.approx(run.energy_pj)

    def test_speedup_consistent_with_raw_results(self, runner):
        t2 = run_table2(runner, networks=["ViT-B/16"])
        row = t2.row("ViT-B/16")
        flat = runner.run("flat", "ViT-B/16").cycles
        mas = runner.run("mas", "ViT-B/16").cycles
        assert row.speedups["flat"] == pytest.approx(flat / mas)

    def test_cross_device_consistency(self):
        """The same workload is slower (in wall-clock) on the lower-clocked NPU preset."""
        edge = ExperimentRunner(use_search=False)
        npu = ExperimentRunner(hardware=davinci_like_npu(), use_search=False)
        edge_run = edge.run("mas", "ViT-B/14").result
        npu_run = npu.run("mas", "ViT-B/14").result
        assert npu_run.latency_seconds > edge_run.latency_seconds
