"""Unit tests for :mod:`repro.numerics` (reference attention, tiled executors, golden check)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tiling import TilingConfig
from repro.numerics.golden import EXECUTORS, golden_check, make_qkv
from repro.numerics.reference import (
    attention_scores,
    naive_softmax,
    online_softmax,
    reference_attention,
    stable_softmax,
)
from repro.numerics.tiled import (
    flat_attention,
    fusemax_attention,
    layerwise_attention,
    mas_attention,
    softpipe_attention,
    tileflow_attention,
)
from repro.workloads.attention import AttentionWorkload


def random_qkv(b=1, h=2, n=96, e=16, seed=0, dtype=np.float64):
    wl = AttentionWorkload(batch=b, heads=h, seq_q=n, seq_kv=n, emb=e)
    return make_qkv(wl, seed=seed, dtype=dtype)


class TestSoftmax:
    def test_stable_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        p = stable_softmax(x)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-12)
        assert np.all(p >= 0)

    def test_stable_matches_naive_for_small_logits(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        np.testing.assert_allclose(stable_softmax(x), naive_softmax(x), rtol=1e-12)

    def test_stable_softmax_handles_large_logits(self):
        x = np.array([[1000.0, 1000.0, 999.0]])
        p = stable_softmax(x)
        assert np.all(np.isfinite(p))
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_stable_softmax_invariant_to_shift(self):
        x = np.random.default_rng(2).standard_normal((2, 9))
        np.testing.assert_allclose(stable_softmax(x), stable_softmax(x + 123.0), rtol=1e-10)

    @pytest.mark.parametrize("tile", [1, 3, 8, 64])
    def test_online_softmax_matches_stable(self, tile):
        x = np.random.default_rng(3).standard_normal((2, 4, 64))
        probs, running_max, running_sum = online_softmax(x, tile=tile)
        np.testing.assert_allclose(probs, stable_softmax(x), rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(running_max, np.max(x, axis=-1))
        assert np.all(running_sum > 0)

    def test_online_softmax_rejects_bad_tile(self):
        with pytest.raises(ValueError):
            online_softmax(np.zeros((2, 4)), tile=0)


class TestReferenceAttention:
    def test_matches_manual_computation(self):
        q, k, v = random_qkv(n=8, e=4)
        out = reference_attention(q, k, v)
        scale = 1.0 / np.sqrt(4)
        scores = scale * q @ np.swapaxes(k, -1, -2)
        expected = stable_softmax(scores) @ v
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_output_shape(self):
        q, k, v = random_qkv(b=2, h=3, n=16, e=8)
        assert reference_attention(q, k, v).shape == (2, 3, 16, 8)

    def test_custom_scale(self):
        q, k, v = random_qkv(n=8, e=4)
        default = reference_attention(q, k, v)
        unscaled = reference_attention(q, k, v, scale=1.0)
        assert not np.allclose(default, unscaled)

    def test_incompatible_shapes_rejected(self):
        q, k, v = random_qkv()
        with pytest.raises(ValueError):
            reference_attention(q, k[..., :8], v[..., :8])

    def test_attention_scores_scaling(self):
        q, k, _ = random_qkv(n=4, e=16)
        np.testing.assert_allclose(
            attention_scores(q, k, scale=2.0), 2.0 * np.einsum("...qe,...ke->...qk", q, k)
        )


class TestTiledExecutors:
    @pytest.mark.parametrize(
        "executor",
        [layerwise_attention, softpipe_attention, flat_attention, tileflow_attention,
         fusemax_attention, mas_attention],
        ids=["layerwise", "softpipe", "flat", "tileflow", "fusemax", "mas"],
    )
    def test_matches_reference(self, executor):
        q, k, v = random_qkv(b=2, h=2, n=80, e=16, seed=11)
        expected = reference_attention(q, k, v)
        kwargs = {}
        if executor is not layerwise_attention:
            kwargs["nq"] = 32
        if executor in (flat_attention, tileflow_attention, fusemax_attention, mas_attention):
            kwargs["nkv"] = 32
        np.testing.assert_allclose(executor(q, k, v, **kwargs), expected, rtol=1e-6, atol=1e-8)

    @pytest.mark.parametrize("nq,nkv", [(16, 16), (32, 48), (80, 80), (7, 13)])
    def test_mas_exact_for_odd_tilings(self, nq, nkv):
        """Tilings that do not divide the sequence still give exact attention."""
        q, k, v = random_qkv(n=80, e=16, seed=5)
        expected = reference_attention(q, k, v)
        np.testing.assert_allclose(mas_attention(q, k, v, nq=nq, nkv=nkv), expected,
                                   rtol=1e-6, atol=1e-8)

    def test_mas_round_log_follows_algorithm1(self):
        q, k, v = random_qkv(n=96, e=16)
        _, log = mas_attention(q, k, v, nq=32, nkv=32, return_round_log=True)
        # 3 blocks: QK1 | QK2+SM1 | PV1+QK3+SM2 | PV2+SM3 | PV3
        ops = [entry.split(":")[1] for entry in log]
        assert ops.count("QK1") == 1 and ops.count("SM1") == 1 and ops.count("PV1") == 1
        assert ops.index("QK1") < ops.index("SM1") < ops.index("PV1")
        assert ops.index("QK3") < ops.index("SM3") < ops.index("PV3")

    def test_fusemax_never_materializes_full_scores(self):
        """The online executor works tile-by-tile; a huge sequence length would
        otherwise need an N x N probability matrix.  We only check correctness
        on a moderate size (memory behaviour is structural)."""
        q, k, v = random_qkv(n=128, e=8, seed=3)
        np.testing.assert_allclose(
            fusemax_attention(q, k, v, nq=32, nkv=16),
            reference_attention(q, k, v),
            rtol=1e-6,
            atol=1e-8,
        )

    def test_shape_validation(self):
        q, k, v = random_qkv()
        with pytest.raises(ValueError):
            flat_attention(q[0], k[0], v[0])  # not 4-D
        with pytest.raises(ValueError):
            mas_attention(q, k, v, nq=0)


class TestGoldenCheck:
    def test_golden_check_passes_for_all_executors(self, tiny_workload):
        result = golden_check(tiny_workload, tolerance=1e-4)
        assert result.passed, result.summary()
        assert set(result.max_errors) == set(EXECUTORS)
        assert result.failures() == {}

    def test_golden_check_reports_failures(self, tiny_workload):
        """A broken executor is caught by the check."""
        broken = dict(EXECUTORS)
        broken["broken"] = lambda q, k, v, nq, nkv: np.zeros_like(q)
        result = golden_check(tiny_workload, executors=broken)
        assert not result.passed
        assert "broken" in result.failures()
        assert "FAIL" in result.summary()

    def test_golden_check_respects_tiling(self, tiny_workload):
        tiling = TilingConfig(nq=16, nkv=16)
        result = golden_check(tiny_workload, tiling=tiling)
        assert result.tiling.nq == 16 and result.passed

    def test_make_qkv_deterministic(self, tiny_workload):
        q1, k1, v1 = make_qkv(tiny_workload, seed=42)
        q2, k2, v2 = make_qkv(tiny_workload, seed=42)
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(k1, k2)
        np.testing.assert_array_equal(v1, v2)
        assert q1.shape == (1, tiny_workload.heads, tiny_workload.seq_q, tiny_workload.emb)
