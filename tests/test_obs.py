"""Tests for the unified telemetry layer (:mod:`repro.obs`): span tracing
across threads, process pools and the HTTP wire; the metrics registry with
latency histograms; Prometheus text exposition edge cases; and the
``mas-attention obs`` CLI toolchain.

The acceptance test at the bottom runs a real multi-process sweep against a
live store service with ``MAS_TRACE`` enabled and asserts the two hard
properties: results stay bit-identical to the untraced sweep, and the trace
covers every layer with parent IDs that stitch across both the process and
the HTTP boundary.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.cli import main as cli_main
from repro.exec.runner import ParallelRunner
from repro.obs import trace as obs_trace
from repro.obs.export import chrome_trace, read_trace, write_chrome
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    global_registry,
)
from repro.obs.prom import escape_label_value, render_registry
from repro.obs.schema import validate_trace_file
from repro.obs.summary import summarize_trace
from repro.obs.trace import TraceContext
from repro.service import running_server, server_url
from repro.service.server import ServiceMetrics
from repro.store import RetryPolicy, SqliteStore, TransientServiceError, call_with_retry
from repro.store.retry import retry_totals


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts and ends with tracing disabled and no ambient context."""
    obs_trace.reset()
    yield
    obs_trace.reset()


# --------------------------------------------------------------------------- #
# TraceContext: the wire format
# --------------------------------------------------------------------------- #
class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="0123456789abcdef", span_id="0a1b2c3d")
        assert ctx.to_header() == "0123456789abcdef-0a1b2c3d"
        assert TraceContext.from_header(ctx.to_header()) == ctx

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "nohyphen",
            "0123456789abcdef",  # trace id only
            "0123456789abcdef-0a1b2c",  # span id too short
            "0123456789abcde-0a1b2c3d",  # trace id too short
            "0123456789abcdeg-0a1b2c3d",  # non-hex trace id
            "0123456789abcdef-0a1b2c3z",  # non-hex span id
        ],
    )
    def test_malformed_headers_parse_to_none(self, value):
        assert TraceContext.from_header(value) is None


# --------------------------------------------------------------------------- #
# Tracer: spans, nesting, buffering, enablement
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_disabled_by_default(self, tmp_path):
        with obs_trace.span("anything", layer="test") as sp:
            assert sp.context is None  # the shared null span
        assert obs_trace.current_context() is None
        assert obs_trace.get_tracer() is None

    def test_nested_spans_share_a_trace_and_parent_correctly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.configure(path)
        with obs_trace.span("outer", layer="test") as outer:
            with obs_trace.span("inner", layer="test") as inner:
                assert inner.context.trace_id == outer.context.trace_id
                assert obs_trace.current_context() == inner.context
        obs_trace.reset()  # flush + close

        spans = {s["name"]: s for s in read_trace(path)}
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["trace_id"] == spans["outer"]["trace_id"]
        # inner completes first: JSONL order is completion order
        assert [s["name"] for s in read_trace(path)] == ["inner", "outer"]

    def test_explicit_parent_and_ambient_context(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.configure(path)
        remote = TraceContext(trace_id="feedfacefeedface", span_id="deadbeef")
        with obs_trace.span("child", parent=remote):
            pass
        obs_trace.attach_context(remote)
        with obs_trace.span("adopted"):
            pass
        obs_trace.reset()

        spans = {s["name"]: s for s in read_trace(path)}
        for name in ("child", "adopted"):
            assert spans[name]["trace_id"] == "feedfacefeedface"
            assert spans[name]["parent_id"] == "deadbeef"

    def test_span_attrs_and_late_set(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.configure(path)
        with obs_trace.span("op", layer="store", backend="sqlite") as sp:
            sp.set(status="hit")
        obs_trace.reset()
        (record,) = read_trace(path)
        assert record["attrs"] == {"backend": "sqlite", "status": "hit"}
        assert record["layer"] == "store"
        assert record["dur_us"] >= 0 and record["pid"] == os.getpid()

    def test_buffering_batches_writes_until_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.configure(path, buffer_spans=100)
        with obs_trace.span("buffered"):
            pass
        assert path.read_text() == ""  # still pending
        obs_trace.flush()
        assert len(read_trace(path)) == 1

    def test_env_enables_tracing_after_reset(self, tmp_path, monkeypatch):
        path = tmp_path / "env_trace.jsonl"
        monkeypatch.setenv("MAS_TRACE", str(path))
        obs_trace.reset()  # forget the (disabled) tracer; re-read the env
        with obs_trace.span("from_env") as sp:
            assert sp.context is not None
        obs_trace.reset()
        assert [s["name"] for s in read_trace(path)] == ["from_env"]

    def test_threads_keep_independent_span_stacks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs_trace.configure(path)
        seen = {}

        def worker():
            # no inherited stack: this span is a root of its own trace
            with obs_trace.span("thread_root") as sp:
                seen["context"] = sp.context

        with obs_trace.span("main_root") as main_sp:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["context"].trace_id != main_sp.context.trace_id
        obs_trace.reset()
        spans = {s["name"]: s for s in read_trace(path)}
        assert spans["thread_root"]["parent_id"] is None


# --------------------------------------------------------------------------- #
# Metrics registry: counters, histograms, quantiles
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        family = registry.counter("things", "Things counted.")
        family.inc(2)
        with pytest.raises(ValueError, match="only go up"):
            family.inc(-1)
        assert family.value == 2

    def test_registration_is_idempotent_but_rejects_mismatch(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", "Ops.", labels=("kind",))
        assert registry.counter("ops", "Ops again.", labels=("kind",)) is a
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("ops", "Now a gauge?")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("ops", "Different labels.", labels=("other",))

    def test_labels_must_match_declared_names(self):
        registry = MetricsRegistry()
        family = registry.counter("ops", "Ops.", labels=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(flavor="x")
        family.labels(kind="read").inc()
        assert family.snapshot() == {"read": 1}

    def test_histogram_quantiles_are_ordered_and_clamped(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms", "Latency.")
        for value in range(1, 101):  # 1..100 ms, uniform
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        # interpolated quantiles stay ordered and inside the observed range
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert 25.0 <= snap["p50"] <= 75.0  # coarse buckets, generous bands

    def test_histogram_single_observation_clamps_to_exact_value(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms", "Latency.")
        hist.observe(3.7)
        snap = hist.snapshot()
        # one sample: every quantile must equal the observation, not a
        # bucket-boundary interpolation
        assert snap["p50"] == snap["p95"] == snap["p99"] == 3.7

    def test_empty_histogram_snapshot_is_all_zeros(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms", "Latency.")
        assert hist.snapshot() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_overflow_bucket_catches_values_above_the_last_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_ms", "Latency.", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(99.0)
        counts = dict(hist._sole_child().bucket_counts())
        assert counts[1.0] == 1 and counts[None] == 1
        assert hist._sole_child().quantile(1.0) == 99.0

    def test_global_registry_is_per_process_singleton(self):
        assert global_registry() is global_registry()
        counter = global_registry().counter("obs_test_counter", "Test.")
        counter.inc()
        assert global_registry().snapshot()["obs_test_counter"] == 1


# --------------------------------------------------------------------------- #
# Prometheus exposition edge cases
# --------------------------------------------------------------------------- #
class TestPrometheus:
    def test_label_values_are_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("back\\slash") == "back\\\\slash"
        assert escape_label_value("two\nlines") == "two\\nlines"

        registry = MetricsRegistry()
        family = registry.counter("odd", "Odd labels.", labels=("name",))
        family.labels(name='q"uote\\b\nnl').inc()
        text = render_registry(registry, "t")
        assert 't_odd_total{name="q\\"uote\\\\b\\nnl"} 1' in text
        assert "\nnl" not in text.split("t_odd_total")[1].splitlines()[0]

    def test_zero_valued_unlabelled_counter_still_renders(self):
        registry = MetricsRegistry()
        registry.counter("untouched", "Never incremented.")
        text = render_registry(registry, "t")
        assert "# TYPE t_untouched_total counter" in text
        assert "t_untouched_total 0" in text

    def test_empty_histogram_renders_zero_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        text = render_registry(registry, "t")
        assert 't_lat_ms_bucket{le="1"} 0' in text
        assert 't_lat_ms_bucket{le="+Inf"} 0' in text
        assert "t_lat_ms_sum 0" in text
        assert "t_lat_ms_count 0" in text
        assert "nan" not in text.lower() and "None" not in text

    def test_labelled_family_with_no_children_is_skipped(self):
        registry = MetricsRegistry()
        registry.counter("latent", "Declared but never used.", labels=("k",))
        assert "latent" not in render_registry(registry, "t")

    def test_histogram_prom_scale_converts_units(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "req_ms", "Latency.", buckets=(100.0,),
            prom_name="req_seconds", prom_scale=1e-3,
        )
        hist.observe(50.0)  # 50 ms
        text = render_registry(registry, "t")
        assert 't_req_seconds_bucket{le="0.1"} 1' in text
        assert "t_req_seconds_sum 0.05" in text
        assert "t_req_seconds_max 0.05" in text

    def test_json_and_prometheus_views_agree(self):
        """The two `/metrics` representations come from one registry: every
        JSON counter and request count must match its text-exposition twin."""
        metrics = ServiceMetrics()
        metrics.count(hits=3, misses=1, puts=2)
        for latency_ms in (0.5, 2.0, 8.0):
            metrics.observe("POST /lookup", latency_ms)
        metrics.observe("GET /stats", 1.0, error=True)

        snapshot = metrics.snapshot()
        text = metrics.render_prometheus()

        assert f"mas_store_hits_total {snapshot['hits']}" in text
        assert f"mas_store_misses_total {snapshot['misses']}" in text
        assert f"mas_store_puts_total {snapshot['puts']}" in text
        lookups = snapshot["requests"]["POST /lookup"]
        assert (
            f'mas_store_requests_total{{endpoint="POST /lookup"}} {lookups["count"]}'
            in text
        )
        assert (
            f'mas_store_request_seconds_count{{endpoint="POST /lookup"}} '
            f'{lookups["count"]}' in text
        )
        stats = snapshot["requests"]["GET /stats"]
        assert stats["errors"] == 1
        assert (
            'mas_store_request_errors_total{endpoint="GET /stats"} 1' in text
        )


# --------------------------------------------------------------------------- #
# Retry counters (satellite): backoffs counted per error class
# --------------------------------------------------------------------------- #
class TestRetryCounters:
    def test_retries_and_giveups_are_counted_per_error_class(self):
        before = retry_totals()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientServiceError("busy")
            return "ok"

        assert (
            call_with_retry(flaky, RetryPolicy(attempts=5, base_delay=0), sleep=lambda _: None)
            == "ok"
        )
        after = retry_totals()
        assert after["retry_attempts"] - before["retry_attempts"] == 2
        assert after["retry_giveups"] == before["retry_giveups"]

        def always_down():
            raise TransientServiceError("down")

        with pytest.raises(TransientServiceError):
            call_with_retry(
                always_down, RetryPolicy(attempts=2, base_delay=0), sleep=lambda _: None
            )
        final = retry_totals()
        assert final["retry_attempts"] - after["retry_attempts"] == 1
        assert final["retry_giveups"] - after["retry_giveups"] == 1

    def test_retry_counters_surface_in_service_metrics_process_section(self):
        def always_down():
            raise TransientServiceError("down")

        with pytest.raises(TransientServiceError):
            call_with_retry(
                always_down, RetryPolicy(attempts=1), sleep=lambda _: None
            )
        process = ServiceMetrics().snapshot()["process"]
        assert process["retry_giveups"]["TransientServiceError"] >= 1


# --------------------------------------------------------------------------- #
# The obs CLI toolchain
# --------------------------------------------------------------------------- #
def _write_sample_trace(path) -> None:
    obs_trace.configure(path)
    with obs_trace.span("sweep", layer="runner", suite="table1"):
        with obs_trace.span("pair", layer="runner", method="mas"):
            with obs_trace.span("store.lookup", layer="store", backend="sqlite"):
                pass
    obs_trace.reset()


class TestObsCli:
    def test_summarize_reports_layers_and_critical_path(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_sample_trace(path)
        assert cli_main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans: 3" in out
        assert "runner" in out and "store" in out
        assert "critical path" in out
        assert "sweep [runner]" in out

    def test_summarize_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SystemExit, match="no spans"):
            cli_main(["obs", "summarize", str(path)])

    def test_convert_writes_loadable_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_sample_trace(path)
        assert cli_main(["obs", "convert", str(path)]) == 0
        output = tmp_path / "t.chrome.json"
        assert output.exists()
        document = json.loads(output.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X"}
        durations = [e for e in events if e["ph"] == "X"]
        assert len(durations) == 3
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in durations)
        by_name = {e["name"]: e for e in durations}
        assert by_name["pair"]["args"]["parent_id"] == by_name["sweep"]["args"]["span_id"]

    def test_validate_accepts_good_and_rejects_corrupt(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_sample_trace(path)
        assert cli_main(["obs", "validate", str(path)]) == 0
        assert "all valid" in capsys.readouterr().out

        with path.open("a") as fh:
            fh.write('{"type": "span", "name": "broken"}\n')
        assert cli_main(["obs", "validate", str(path)]) == 1
        assert "problem" in capsys.readouterr().err

    def test_validate_catches_dangling_parent(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _write_sample_trace(path)
        records = read_trace(path)
        records[0]["parent_id"] = "aaaaaaaa"  # no such span
        with path.open("w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        assert cli_main(["obs", "validate", str(path)]) == 1
        assert "never flushed" in capsys.readouterr().err

    def test_metrics_renders_service_latency_table(self, tmp_path, capsys):
        from repro.store import HttpStore

        with running_server(SqliteStore(tmp_path / "served.db")) as srv:
            url = server_url(srv)
            client = HttpStore(url)
            try:
                client.lookup("missing")
            finally:
                client.close()
            assert cli_main(["obs", "metrics", url]) == 0
            out = capsys.readouterr().out
            assert "request latency by endpoint" in out
            assert "POST /lookup" in out
            assert "uptime" in out

            assert cli_main(["obs", "metrics", url, "--raw"]) == 0
            raw = json.loads(capsys.readouterr().out)
            assert raw["requests"]["POST /lookup"]["count"] >= 1
            assert "p95_ms" in raw["requests"]["POST /lookup"]

    def test_metrics_rejects_local_store_uris(self, tmp_path):
        with pytest.raises(SystemExit, match="served store"):
            cli_main(["obs", "metrics", f"sqlite:///{tmp_path}/x.db"])


# --------------------------------------------------------------------------- #
# Acceptance: traced parallel sweep over a live service
# --------------------------------------------------------------------------- #
class TestTracedSweepAcceptance:
    NETWORKS = ["BERT-Base"]
    METHODS = ["layerwise", "flat", "tileflow", "mas"]

    @staticmethod
    def _fingerprint(matrix) -> list[tuple]:
        rows = []
        for network, methods in sorted(matrix.items()):
            for method, run in sorted(methods.items()):
                tiling = run.tuning.best_tiling.as_dict() if run.tuning else None
                rows.append(
                    (network, method, run.cycles, run.energy_pj, tuple(sorted((tiling or {}).items())))
                )
        return rows

    def test_traced_jobs4_sweep_is_bit_identical_and_covers_every_layer(
        self, tmp_path, monkeypatch
    ):
        trace_path = tmp_path / "sweep_trace.jsonl"

        # Baseline: tracing off, no cache — pure search results.
        baseline = ParallelRunner(search_budget=4, jobs=1, use_cache=False)
        expected = self._fingerprint(
            baseline.run_matrix(networks=self.NETWORKS, methods=self.METHODS)
        )

        with running_server(SqliteStore(tmp_path / "served.db")) as srv:
            monkeypatch.setenv("MAS_TRACE", str(trace_path))
            obs_trace.reset()  # re-read the env; forked workers inherit it
            try:
                traced = ParallelRunner(
                    search_budget=4,
                    jobs=4,
                    cache_uri=server_url(srv),
                )
                actual = self._fingerprint(
                    traced.run_matrix(networks=self.NETWORKS, methods=self.METHODS)
                )
            finally:
                obs_trace.reset()
                monkeypatch.delenv("MAS_TRACE")

        # 1. bit identity: tracing and the HTTP store change nothing
        assert actual == expected

        # 2. every instrumented layer appears in the sweep's own trace (the
        # eager health ping legitimately records a second, tiny trace)
        spans = read_trace(trace_path)
        summary = summarize_trace(spans)
        assert {"runner", "search", "store", "http", "service"} <= set(summary.layers)
        assert summary.process_count > 1  # sweep process + pool workers
        sweep_trace = next(s for s in spans if s["name"] == "sweep")["trace_id"]
        sweep_layers = {s["layer"] for s in spans if s["trace_id"] == sweep_trace}
        assert {"runner", "search", "store", "http", "service"} <= sweep_layers

        # 3. parent IDs are consistent across process and HTTP boundaries
        assert validate_trace_file(trace_path) == []
        by_id = {s["span_id"]: s for s in spans}
        sweep = next(s for s in spans if s["name"] == "sweep")
        pairs = [s for s in spans if s["name"] == "pair"]
        assert len(pairs) == len(self.NETWORKS) * len(self.METHODS)
        for pair in pairs:
            assert pair["parent_id"] == sweep["span_id"]
            assert pair["pid"] != sweep["pid"]  # executed by a pool worker
        for service_span in (s for s in spans if s["name"] == "service.request"):
            parent = by_id[service_span["parent_id"]]
            assert parent["name"] == "http.request"
            assert parent["pid"] != service_span["pid"] or parent["tid"] != service_span["tid"]

        # 4. the trace converts to a Chrome/Perfetto-loadable document
        chrome = chrome_trace(spans)["traceEvents"]
        assert len([e for e in chrome if e["ph"] == "X"]) == len(spans)
        out = tmp_path / "sweep_trace.chrome.json"
        write_chrome(spans, out)
        assert json.loads(out.read_text())["traceEvents"]

    def test_traced_serial_sweep_matches_untraced(self, tmp_path):
        """Same property without processes: configure()-based, dir store."""
        baseline = ParallelRunner(search_budget=3, jobs=1, use_cache=False)
        expected = self._fingerprint(
            baseline.run_matrix(networks=["BERT-Base"], methods=["mas"])
        )
        obs_trace.configure(tmp_path / "serial.jsonl")
        traced = ParallelRunner(
            search_budget=3, jobs=1, cache_uri=f"dir:{tmp_path / 'cache'}"
        )
        actual = self._fingerprint(
            traced.run_matrix(networks=["BERT-Base"], methods=["mas"])
        )
        obs_trace.reset()
        assert actual == expected
        layers = {s["layer"] for s in read_trace(tmp_path / "serial.jsonl")}
        assert {"runner", "search", "store"} <= layers
