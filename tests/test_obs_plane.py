"""Tests for the fleet observability plane (:mod:`repro.obs.collect`,
:mod:`repro.obs.dash`, :mod:`repro.obs.bench`, :mod:`repro.obs.profile`):
histogram/family merge semantics, Prometheus text parsing, the collector's
degradation under endpoint failure, SSE framing and streaming, the perf
trajectory gate, span profiling, and the end-to-end acceptance run — a
live dashboard scraping two store services while a traced ``--jobs 4``
sweep streams spans through it, with bit-identical results.
"""

from __future__ import annotations

import http.client
import json
import queue
import socket
import time
import urllib.request
from pathlib import Path
from urllib.parse import urlsplit

import pytest

from repro.cli import main as cli_main
from repro.exec.runner import ParallelRunner
from repro.obs import trace as obs_trace
from repro.obs.bench import (
    DEFAULT_RULES,
    Rule,
    compare,
    flatten_metrics,
    history_payload,
    load_history,
    load_rules,
    record_runs,
)
from repro.obs.collect import (
    FleetCollector,
    TraceTail,
    counter_totals,
    endpoints_for,
    merge_registries,
)
from repro.obs.dash import (
    ObsState,
    dashboard_url,
    running_dashboard,
    sse_format,
)
from repro.obs.export import read_trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.prom import parse_text, registry_from_text, render_registry
from repro.obs.summary import summarize_trace
from repro.service import running_server, server_url
from repro.store import HttpStore, SqliteStore


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts and ends with tracing/profiling disabled."""
    obs_trace.reset()
    yield
    obs_trace.reset()


def _get_json(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


# --------------------------------------------------------------------------- #
# Histogram / MetricFamily merge
# --------------------------------------------------------------------------- #
class TestHistogramMerge:
    def test_merge_adds_bucket_counts_sum_and_extremes(self):
        a = Histogram(buckets=(1.0, 10.0))
        b = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0):
            a.observe(v)
        for v in (5.0, 50.0):
            b.observe(v)
        a.merge(b)
        assert [c for _, c in a.bucket_counts()] == [1, 2, 1]
        assert a.count == 4
        assert a.sum == pytest.approx(60.5)
        assert a.max == pytest.approx(50.0)

    def test_merge_mismatched_buckets_raises(self):
        a = Histogram(buckets=(1.0, 10.0))
        b = Histogram(buckets=(1.0, 2.0, 10.0))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_empty_merge_is_identity(self):
        a = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 3.0, 20.0):
            a.observe(v)
        before = (list(a.bucket_counts()), a.snapshot())
        a.merge(Histogram(buckets=(1.0, 10.0)))
        assert (list(a.bucket_counts()), a.snapshot()) == before

    def test_quantiles_after_merge_reflect_combined_population(self):
        buckets = tuple(float(b) for b in range(1, 101))
        a = Histogram(buckets=buckets)
        b = Histogram(buckets=buckets)
        for v in range(1, 51):
            a.observe(float(v))
        for v in range(51, 101):
            b.observe(float(v))
        a.merge(b)
        assert a.count == 100
        assert a.quantile(0.5) == pytest.approx(50.0, abs=1.5)
        assert a.quantile(0.95) == pytest.approx(95.0, abs=1.5)

    def test_from_buckets_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="counts"):
            Histogram.from_buckets((1.0, 10.0), [1, 2])  # needs len(buckets)+1
        with pytest.raises(ValueError, match="negative"):
            Histogram.from_buckets((1.0, 10.0), [1, -2, 0])

    def test_family_merge_counters_and_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        fam_a = a.counter("hits", "h", labels=("ep",))
        fam_b = b.counter("hits", "h", labels=("ep",))
        fam_a.labels(ep="x").inc(2)
        fam_b.labels(ep="x").inc(3)
        fam_b.labels(ep="y").inc(1)
        fam_a.merge(fam_b)
        assert fam_a.labels(ep="x").value == 5
        assert fam_a.labels(ep="y").value == 1

        gauge = b.gauge("hits2", "g")
        with pytest.raises(ValueError, match="cannot merge gauge"):
            fam_a.merge(gauge)
        other_labels = b.counter("hits3", "h", labels=("other",))
        with pytest.raises(ValueError, match="labels"):
            fam_a.merge(other_labels)

    def test_family_merge_refuses_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ga = a.gauge("uptime", "u")
        gb = b.gauge("uptime", "u")
        with pytest.raises(ValueError, match="label gauges per source"):
            ga.merge(gb)

    def test_family_merge_of_empty_family_is_identity(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        fam_a = a.histogram("lat", "l", buckets=(1.0, 10.0))
        fam_b = b.histogram("lat", "l", buckets=(1.0, 10.0))
        fam_a.observe(0.5)
        fam_a.merge(fam_b)
        assert fam_a._sole_child().count == 1


# --------------------------------------------------------------------------- #
# Prometheus text parsing
# --------------------------------------------------------------------------- #
class TestPromParsing:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("hits", "Hits.").inc(5)
        requests = registry.counter("requests", "Reqs.", labels=("endpoint",))
        requests.labels(endpoint='POST /lookup "quoted"\nline').inc(7)
        registry.gauge("uptime_seconds", "Up.").set(12.5)
        lat = registry.histogram(
            "request_ms", "Latency.", labels=("endpoint",),
            prom_name="request_seconds", prom_scale=1e-3,
        )
        for v in (0.2, 0.7, 3.0, 40.0, 40.0):
            lat.labels(endpoint="POST /lookup").observe(v)
        return registry

    def test_round_trip_preserves_counters_gauges_and_buckets(self):
        registry = self._populated()
        text = render_registry(registry, "mas_store")
        parsed = registry_from_text(text)
        snap = parsed.snapshot()
        assert snap["mas_store_hits"] == 5.0
        assert snap["mas_store_requests"] == {'POST /lookup "quoted"\nline': 7.0}
        assert snap["mas_store_uptime_seconds"] == 12.5
        hist = snap["mas_store_request_seconds"]["POST /lookup"]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(0.0839)
        assert hist["max"] == pytest.approx(0.04)
        # per-bucket counts survive exactly, not just aggregates
        family = next(
            f for f in parsed.families() if f.name == "mas_store_request_seconds"
        )
        child = family.labels(endpoint="POST /lookup")
        nonzero = [(le, c) for le, c in child.bucket_counts() if c]
        assert nonzero == [(0.00025, 1), (0.001, 1), (0.005, 1), (0.05, 2)]

    def test_parse_rejects_decreasing_cumulative_buckets(self):
        text = (
            "# TYPE x histogram\n"
            'x_bucket{le="1"} 5\n'
            'x_bucket{le="+Inf"} 3\n'
            "x_sum 1\n"
            "x_count 3\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_text(text)

    def test_parse_requires_inf_bucket(self):
        text = "# TYPE x histogram\n" 'x_bucket{le=\"1\"} 5\n' "x_sum 1\nx_count 5\n"
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_text(text)

    def test_typeless_samples_degrade_to_gauges(self):
        families = parse_text("mystery_value 42\n")
        assert families["mystery_value"].kind == "gauge"
        assert families["mystery_value"].samples[()] == 42.0


# --------------------------------------------------------------------------- #
# Fleet merge + endpoints
# --------------------------------------------------------------------------- #
class TestFleetMerge:
    def test_endpoints_for_accepts_shard_http_and_lists(self):
        assert endpoints_for("shard:http://a:1,http://b:2?replicas=2") == (
            "http://a:1",
            "http://b:2",
        )
        assert endpoints_for("http://a:1") == ("http://a:1",)
        assert endpoints_for("http://a:1/, http://a:1") == ("http://a:1",)
        with pytest.raises(ValueError, match="no endpoints"):
            endpoints_for("shard:?replicas=2")
        with pytest.raises(ValueError, match="http"):
            endpoints_for("sqlite:///x.db")

    def test_merge_registries_sums_counters_and_labels_gauges_per_source(self):
        def source(hits: int, up: float) -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("mas_store_hits", "h").inc(hits)
            registry.gauge("mas_store_uptime_seconds", "u").set(up)
            return registry

        fleet = merge_registries(
            {"http://a:1": source(2, 10.0), "http://b:2": source(3, 20.0)}
        )
        snap = fleet.snapshot()
        assert snap["mas_store_hits"] == 5.0
        assert snap["mas_store_uptime_seconds"] == {
            "http://a:1": 10.0,
            "http://b:2": 20.0,
        }
        assert counter_totals(fleet) == {"mas_store_hits": 5.0}

    def test_merge_registries_merges_histograms_bucket_by_bucket(self):
        def source(values) -> MetricsRegistry:
            registry = MetricsRegistry()
            family = registry.histogram("lat", "l", buckets=(1.0, 10.0))
            for v in values:
                family.observe(v)
            return registry

        fleet = merge_registries(
            {"a": source([0.5, 5.0]), "b": source([5.0, 50.0])}
        )
        child = next(f for f in fleet.families() if f.name == "lat")._sole_child()
        assert [c for _, c in child.bucket_counts()] == [1, 2, 1]


# --------------------------------------------------------------------------- #
# TraceTail
# --------------------------------------------------------------------------- #
class TestTraceTail:
    def test_tail_is_incremental_and_tolerates_missing_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tail = TraceTail(path)
        assert tail.poll() == []
        path.write_text('{"name": "a"}\n')
        assert [e["name"] for e in tail.poll()] == ["a"]
        assert tail.poll() == []
        with path.open("a") as fh:
            fh.write('{"name": "b"}\n{"name": "c"}\n')
        assert [e["name"] for e in tail.poll()] == ["b", "c"]

    def test_tail_holds_back_partial_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tail = TraceTail(path)
        path.write_text('{"name": "a"}\n{"na')  # torn mid-write
        assert [e["name"] for e in tail.poll()] == ["a"]
        with path.open("a") as fh:
            fh.write('me": "b"}\n')
        assert [e["name"] for e in tail.poll()] == ["b"]

    def test_tail_resets_on_truncation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tail = TraceTail(path)
        path.write_text('{"name": "a"}\n{"name": "b"}\n')
        assert len(tail.poll()) == 2
        path.write_text('{"name": "fresh"}\n')  # shorter: a new trace
        assert [e["name"] for e in tail.poll()] == ["fresh"]


# --------------------------------------------------------------------------- #
# Collector against live services
# --------------------------------------------------------------------------- #
class TestFleetCollector:
    def test_scrape_merges_two_live_endpoints(self, tmp_path):
        with running_server(SqliteStore(tmp_path / "a.db")) as a, running_server(
            SqliteStore(tmp_path / "b.db")
        ) as b:
            for srv in (a, b):
                client = HttpStore(server_url(srv))
                try:
                    client.lookup("missing")
                finally:
                    client.close()
            target = f"shard:{server_url(a)},{server_url(b)}"
            collector = FleetCollector(endpoints_for(target), interval=0.2, ring=8)
            snapshot = collector.scrape_once()
            assert snapshot.healthy_count == 2
            snap = snapshot.registry.snapshot()
            assert snap["mas_store_misses"] >= 2.0  # summed across endpoints
            assert len(snap["mas_store_uptime_seconds"]) == 2  # one per source

    def test_one_dead_endpoint_degrades_not_kills(self, tmp_path):
        # Reserve a port that is guaranteed closed while the test runs.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with running_server(SqliteStore(tmp_path / "a.db")) as a:
            collector = FleetCollector(
                (server_url(a), f"http://127.0.0.1:{dead_port}"), interval=0.2
            )
            snapshot = collector.scrape_once()
        assert snapshot.healthy_count == 1
        states = {e.url: e for e in snapshot.endpoints}
        dead = states[f"http://127.0.0.1:{dead_port}"]
        assert not dead.healthy and dead.error
        # the live endpoint's metrics still made it into the fleet view
        assert snapshot.registry.snapshot().get("mas_store_uptime_seconds")

    def test_snapshot_ring_is_bounded(self, tmp_path):
        with running_server(SqliteStore(tmp_path / "a.db")) as a:
            collector = FleetCollector((server_url(a),), interval=0.2, ring=3)
            for _ in range(5):
                collector.scrape_once()
            snapshots = collector.snapshots()
        assert len(snapshots) == 3
        assert [s.seq for s in snapshots] == [3, 4, 5]

    def test_subscribers_receive_metric_deltas_and_spans(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with running_server(SqliteStore(tmp_path / "a.db")) as a:
            collector = FleetCollector(
                (server_url(a),), interval=0.2, trace_path=trace
            )
            subscriber = collector.subscribe()
            collector.scrape_once()
            trace.write_text('{"name": "pair", "layer": "runner"}\n')
            collector.poll_spans()
            events = [subscriber.get_nowait() for _ in range(2)]
        assert [e["event"] for e in events] == ["metrics", "span"]
        assert events[1]["data"]["name"] == "pair"
        collector.unsubscribe(subscriber)
        collector._publish("span", {})  # no subscriber: must not raise


# --------------------------------------------------------------------------- #
# SSE framing
# --------------------------------------------------------------------------- #
class TestSseFraming:
    def test_frame_shape(self):
        frame = sse_format("span", {"a": 1}).decode()
        assert frame == 'event: span\ndata: {"a":1}\n\n'

    def test_multiline_payload_stays_one_frame(self):
        frame = sse_format("metrics", "line1\nline2").decode()
        # json.dumps escapes the newline, so exactly one data line results —
        # but the framing contract (split on \n) must hold regardless.
        body, _, trailer = frame.partition("\n\n")
        assert trailer == ""
        lines = body.split("\n")
        assert lines[0] == "event: metrics"
        assert all(line.startswith("data: ") for line in lines[1:])

    def test_rejects_invalid_event_names(self):
        with pytest.raises(ValueError, match="event name"):
            sse_format("bad\nname", {})
        with pytest.raises(ValueError, match="event name"):
            sse_format("", {})


# --------------------------------------------------------------------------- #
# Perf trajectory (bench)
# --------------------------------------------------------------------------- #
class TestPerfTrajectory:
    BENCH = {
        "search_throughput": {
            "sweep": {"prune": {"candidates_per_s": 200.0}},
            "networks": ["x"],
        },
        "tracing_overhead": {"overhead_ratio": 1.05, "passed": True},
    }

    def _record(self, tmp_path, doc, run_id) -> Path:
        bench = tmp_path / f"{run_id}.json"
        bench.write_text(json.dumps(doc))
        record_runs(bench, tmp_path / "hist.jsonl", run_id=run_id, ts=1.0)
        return tmp_path / "hist.jsonl"

    def test_flatten_metrics_keeps_numbers_and_bools_only(self):
        flat = flatten_metrics(self.BENCH["search_throughput"])
        assert flat == {"sweep.prune.candidates_per_s": 200.0}
        assert flatten_metrics({"ok": True}) == {"ok": 1.0}

    def test_compare_passes_on_flat_trajectory(self, tmp_path):
        self._record(tmp_path, self.BENCH, "r1")
        hist = self._record(tmp_path, self.BENCH, "r2")
        report = compare(load_history(hist))
        assert report.ok
        assert not report.fresh
        metrics = {f"{d.benchmark}.{d.metric}" for d in report.deltas}
        assert "search_throughput.sweep.prune.candidates_per_s" in metrics

    def test_compare_flags_injected_regression(self, tmp_path):
        self._record(tmp_path, self.BENCH, "r1")
        self._record(tmp_path, self.BENCH, "r2")
        bad = json.loads(json.dumps(self.BENCH))
        bad["search_throughput"]["sweep"]["prune"]["candidates_per_s"] = 100.0
        hist = self._record(tmp_path, bad, "r3")
        report = compare(load_history(hist))
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "sweep.prune.candidates_per_s"
        assert regression.delta_pct == pytest.approx(-50.0)
        assert "REGRESSION" in report.format()

    def test_direction_lower_is_better(self, tmp_path):
        self._record(tmp_path, self.BENCH, "r1")
        worse = json.loads(json.dumps(self.BENCH))
        worse["tracing_overhead"]["overhead_ratio"] = 1.3
        hist = self._record(tmp_path, worse, "r2")
        report = compare(load_history(hist))
        assert [d.metric for d in report.regressions] == ["overhead_ratio"]

    def test_first_run_is_fresh_not_failed(self, tmp_path):
        hist = self._record(tmp_path, self.BENCH, "r1")
        report = compare(load_history(hist))
        assert report.ok
        assert set(report.fresh) == {"search_throughput", "tracing_overhead"}

    def test_rules_file_and_validation(self, tmp_path):
        rules_path = tmp_path / "rules.json"
        rules_path.write_text(
            json.dumps([{"pattern": "*.candidates_per_s", "tolerance": 0.01}])
        )
        rules = load_rules(rules_path)
        assert rules[0].direction == "higher"
        with pytest.raises(ValueError, match="direction"):
            Rule("*", "sideways", 0.1)
        rules_path.write_text("{}")
        with pytest.raises(ValueError, match="JSON list"):
            load_rules(rules_path)

    def test_cli_record_check_pass_and_fail(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bench = tmp_path / "BENCH_search.json"
        hist = tmp_path / "BENCH_history.jsonl"
        bench.write_text(json.dumps(self.BENCH))
        for run in ("r1", "r2"):
            assert cli_main(
                ["obs", "bench", "record", "--bench", str(bench),
                 "--history", str(hist), "--run-id", run]
            ) == 0
        assert cli_main(["obs", "bench", "check", "--history", str(hist)]) == 0
        assert "PASS" in capsys.readouterr().out

        bad = json.loads(json.dumps(self.BENCH))
        bad["search_throughput"]["sweep"]["prune"]["candidates_per_s"] = 1.0
        bench.write_text(json.dumps(bad))
        assert cli_main(
            ["obs", "bench", "record", "--bench", str(bench),
             "--history", str(hist), "--run-id", "r3"]
        ) == 0
        assert cli_main(["obs", "bench", "check", "--history", str(hist)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # compare reports but never gates
        assert cli_main(["obs", "bench", "compare", "--history", str(hist)]) == 0

    def test_cli_check_without_history_exits_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no benchmark history"):
            cli_main(
                ["obs", "bench", "check", "--history", str(tmp_path / "nope.jsonl")]
            )

    def test_repo_history_passes_the_real_gate(self):
        """The committed trajectory must be green (acceptance criterion)."""
        repo_history = Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
        entries = load_history(repo_history)
        runs = {entry["run"] for entry in entries}
        assert len(runs) >= 2
        assert compare(entries, rules=DEFAULT_RULES).ok

    def test_history_payload_shape(self, tmp_path):
        hist = self._record(tmp_path, self.BENCH, "r1")
        payload = history_payload(hist)
        assert payload["entries"] == 2
        assert payload["runs"][0]["run"] == "r1"
        assert payload["report"]["ok"] is True


# --------------------------------------------------------------------------- #
# Critical path scoping (regression test for the multi-trace splice bug)
# --------------------------------------------------------------------------- #
class TestCriticalPathScoping:
    def test_path_never_crosses_trace_boundaries(self):
        spans = [
            # trace A: heaviest root, child chain rooted at span id "s1"
            {"name": "sweep", "layer": "runner", "trace_id": "A",
             "span_id": "s1", "parent_id": None, "ts_us": 0, "dur_us": 1000},
            {"name": "pair", "layer": "runner", "trace_id": "A",
             "span_id": "s2", "parent_id": "s1", "ts_us": 0, "dur_us": 500},
            # trace B reuses the same span ids with a *much* heavier child:
            # keying children by bare span_id would splice it under trace A.
            {"name": "other-root", "layer": "runner", "trace_id": "B",
             "span_id": "s1", "parent_id": None, "ts_us": 0, "dur_us": 10},
            {"name": "intruder", "layer": "store", "trace_id": "B",
             "span_id": "s3", "parent_id": "s1", "ts_us": 0, "dur_us": 900},
        ]
        path = summarize_trace(spans).critical_path
        assert [name for name, _, _ in path] == ["sweep", "pair"]

    def test_format_top_caps_layers_and_spans(self):
        spans = [
            {"name": f"n{i}", "layer": f"layer{i}", "trace_id": "T",
             "span_id": f"s{i}", "parent_id": None, "ts_us": 0, "dur_us": 100 + i}
            for i in range(8)
        ]
        text = summarize_trace(spans).format(top=3)
        assert "... 5 more layer(s)" in text
        assert text.count(" ms  in ") == 3


# --------------------------------------------------------------------------- #
# Span profiling (MAS_PROFILE)
# --------------------------------------------------------------------------- #
class TestSpanProfiling:
    def _traced_burn(self, tmp_path, monkeypatch, profile: str, min_ms: str):
        trace_path = tmp_path / "t.jsonl"
        monkeypatch.setenv("MAS_TRACE", str(trace_path))
        monkeypatch.setenv("MAS_PROFILE", profile)
        monkeypatch.setenv("MAS_PROFILE_MIN_MS", min_ms)
        monkeypatch.setenv("MAS_PROFILE_DIR", str(tmp_path / "prof"))
        obs_trace.reset()
        with obs_trace.span("outer", layer="runner"):
            with obs_trace.span("gen", layer="search"):
                sum(i * i for i in range(50000))
        obs_trace.reset()
        return trace_path

    def test_matching_layer_persists_pstats_and_attr(self, tmp_path, monkeypatch):
        trace_path = self._traced_burn(tmp_path, monkeypatch, "search", "0")
        spans = {s["name"]: s for s in read_trace(trace_path)}
        profile = spans["gen"]["attrs"].get("profile")
        assert profile and Path(profile).exists()
        assert "search-gen-" in Path(profile).name
        assert "profile" not in spans["outer"]["attrs"]  # layer filter held

    def test_fast_spans_discard_their_stats(self, tmp_path, monkeypatch):
        trace_path = self._traced_burn(tmp_path, monkeypatch, "search", "60000")
        spans = {s["name"]: s for s in read_trace(trace_path)}
        assert "profile" not in spans["gen"]["attrs"]
        assert not list((tmp_path / "prof").glob("*.pstats"))

    def test_profile_all_covers_only_outermost_span_per_thread(
        self, tmp_path, monkeypatch
    ):
        trace_path = self._traced_burn(tmp_path, monkeypatch, "all", "0")
        spans = {s["name"]: s for s in read_trace(trace_path)}
        assert "profile" in spans["outer"]["attrs"]
        assert "profile" not in spans["gen"]["attrs"]  # cProfile cannot nest

    def test_obs_profile_cli_reports_hotspots(self, tmp_path, monkeypatch, capsys):
        trace_path = self._traced_burn(tmp_path, monkeypatch, "search", "0")
        assert cli_main(["obs", "profile", str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profiled spans: 1" in out
        assert "aggregate hotspots" in out

    def test_obs_profile_cli_without_profiles(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        trace_path.write_text(
            json.dumps({"name": "a", "layer": "runner", "trace_id": "T",
                        "span_id": "s", "parent_id": None,
                        "ts_us": 0, "dur_us": 1}) + "\n"
        )
        assert cli_main(["obs", "profile", str(trace_path)]) == 0
        assert "no profiled spans" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# obs metrics --watch
# --------------------------------------------------------------------------- #
class TestMetricsWatch:
    def test_watch_loops_until_interrupted(self, tmp_path, monkeypatch, capsys):
        with running_server(SqliteStore(tmp_path / "a.db")) as srv:
            url = server_url(srv)
            calls = {"n": 0}

            def fake_sleep(seconds):
                calls["n"] += 1
                if calls["n"] >= 2:
                    raise KeyboardInterrupt
                return None

            monkeypatch.setattr("repro.cli.time.sleep", fake_sleep)
            assert cli_main(["obs", "metrics", url, "--watch", "0.5"]) == 0
        out = capsys.readouterr().out
        assert calls["n"] == 2
        assert out.count("uptime") >= 2  # rendered more than once


# --------------------------------------------------------------------------- #
# Dashboard HTTP surface
# --------------------------------------------------------------------------- #
class TestDashboardEndpoints:
    @pytest.fixture()
    def dash(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        history = tmp_path / "hist.jsonl"
        with running_server(SqliteStore(tmp_path / "a.db")) as a, running_server(
            SqliteStore(tmp_path / "b.db")
        ) as b:
            target = f"shard:{server_url(a)},{server_url(b)}"
            collector = FleetCollector(
                endpoints_for(target), interval=0.1, trace_path=trace
            )
            state = ObsState(
                collector=collector, target=target,
                trace_path=trace, history_path=history,
            )
            with running_dashboard(state) as server:
                yield dashboard_url(server), trace, history

    def test_healthz_fleet_metrics_and_404(self, dash):
        url, _, _ = dash
        health = _get_json(url + "/healthz")
        assert health["ok"] and len(health["endpoints"]) == 2

        fleet = _get_json(url + "/api/obs/fleet")
        assert fleet["latest"]["healthy"] == 2
        assert "mas_store_uptime_seconds" in fleet["latest"]["metrics"]
        assert fleet["history"]

        metrics = _get_json(url + "/api/obs/metrics")
        assert "mas_store_puts" in metrics["metrics"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(url + "/nope")
        assert excinfo.value.code == 404

    def test_index_page_is_self_contained(self, dash):
        url, _, _ = dash
        with urllib.request.urlopen(url + "/", timeout=5) as response:
            html = response.read().decode()
        assert html.startswith("<!doctype html>")
        assert "EventSource" in html
        assert "src=" not in html.split("<script>")[0]  # no external assets

    def test_spans_and_summary_follow_the_trace_file(self, dash):
        url, trace, _ = dash
        assert _get_json(url + "/api/obs/summary")["available"] is False
        trace.write_text(
            json.dumps({"name": "sweep", "layer": "runner", "trace_id": "T",
                        "span_id": "s1", "parent_id": None,
                        "ts_us": 0, "dur_us": 1000}) + "\n"
        )
        spans = _get_json(url + "/api/obs/spans?limit=10")
        assert [s["name"] for s in spans["spans"]] == ["sweep"]
        summary = _get_json(url + "/api/obs/summary?top=3")
        assert summary["available"] is True
        assert summary["summary"]["span_count"] == 1

    def test_bench_endpoint_serves_history(self, dash):
        url, _, history = dash
        assert _get_json(url + "/api/obs/bench")["entries"] == 0
        history.write_text(
            json.dumps({"ts": 1.0, "run": "r1", "name": "b",
                        "metrics": {"candidates_per_s": 5.0}}) + "\n"
        )
        doc = _get_json(url + "/api/obs/bench")
        assert doc["entries"] == 1 and doc["available"] is True

    def test_sse_stream_delivers_appended_spans(self, dash):
        url, trace, _ = dash
        parts = urlsplit(url)
        conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
        try:
            conn.request("GET", "/api/obs/stream")
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers["Content-Type"] == "text/event-stream"
            trace.write_text(
                json.dumps({"name": "pair", "layer": "runner", "trace_id": "T",
                            "span_id": "s1", "parent_id": None,
                            "ts_us": 0, "dur_us": 5}) + "\n"
            )
            event_name, payload = None, None
            deadline = time.time() + 10  # mas-lint: disable=determinism(test timeout budget, not a result)
            while time.time() < deadline:  # mas-lint: disable=determinism(test timeout budget, not a result)
                line = response.fp.readline().decode().rstrip("\n")
                if line.startswith("event: span"):
                    event_name = "span"
                elif event_name == "span" and line.startswith("data: "):
                    payload = json.loads(line[len("data: "):])
                    break
            assert payload is not None and payload["name"] == "pair"
        finally:
            conn.close()


# --------------------------------------------------------------------------- #
# Acceptance: live dashboard over a traced --jobs 4 sweep
# --------------------------------------------------------------------------- #
class TestObsPlaneAcceptance:
    NETWORKS = ["BERT-Base"]
    METHODS = ["layerwise", "flat", "tileflow", "mas"]

    @staticmethod
    def _fingerprint(matrix) -> list[tuple]:
        rows = []
        for network, methods in sorted(matrix.items()):
            for method, run in sorted(methods.items()):
                tiling = run.tuning.best_tiling.as_dict() if run.tuning else None
                rows.append(
                    (network, method, run.cycles, run.energy_pj,
                     tuple(sorted((tiling or {}).items())))
                )
        return rows

    def test_dashboard_observes_traced_sweep_without_perturbing_it(
        self, tmp_path, monkeypatch
    ):
        trace_path = tmp_path / "sweep.jsonl"

        # Baseline: no tracing, no dashboard, no cache.
        baseline = ParallelRunner(search_budget=4, jobs=1, use_cache=False)
        expected = self._fingerprint(
            baseline.run_matrix(networks=self.NETWORKS, methods=self.METHODS)
        )

        with running_server(SqliteStore(tmp_path / "a.db")) as a, running_server(
            SqliteStore(tmp_path / "b.db")
        ) as b:
            target = f"shard:{server_url(a)},{server_url(b)}?replicas=2"
            collector = FleetCollector(
                endpoints_for(target), interval=0.1, trace_path=trace_path
            )
            state = ObsState(
                collector=collector, target=target, trace_path=trace_path
            )
            with running_dashboard(state) as dash_server:
                url = dashboard_url(dash_server)
                subscriber = collector.subscribe()
                monkeypatch.setenv("MAS_TRACE", str(trace_path))
                obs_trace.reset()  # re-read env; forked workers inherit it
                try:
                    traced = ParallelRunner(
                        search_budget=4, jobs=4, cache_uri=target
                    )
                    actual = self._fingerprint(
                        traced.run_matrix(
                            networks=self.NETWORKS, methods=self.METHODS
                        )
                    )
                finally:
                    obs_trace.reset()
                    monkeypatch.delenv("MAS_TRACE")

                # 1. bit identity with the dashboard attached end to end
                assert actual == expected

                # 2. the collector tailed the sweep's spans live: the --jobs 4
                # pair spans (and their pool workers' children) reached the
                # SSE fan-out, not just the file.
                deadline = time.time() + 10  # mas-lint: disable=determinism(test timeout budget, not a result)
                while collector.span_count < 4 and time.time() < deadline:  # mas-lint: disable=determinism(test timeout budget, not a result)
                    collector.poll_spans()
                    time.sleep(0.05)
                streamed = []
                while True:
                    try:
                        item = subscriber.get_nowait()
                    except queue.Empty:
                        break
                    if item["event"] == "span":
                        streamed.append(item["data"])
                names = {span.get("name") for span in streamed}
                assert "pair" in names
                assert {s.get("pid") for s in streamed if s.get("name") == "pair"}

                # 3. fleet view over both endpoints, merged bucket-by-bucket:
                # the fleet histogram's per-bucket counts equal the element-
                # wise sum of the two endpoints' scraped buckets.
                snapshot = collector.scrape_once()
                assert snapshot.healthy_count == 2
                per_endpoint = []
                for endpoint in collector.endpoints:
                    with urllib.request.urlopen(
                        endpoint + "/metrics?format=prometheus", timeout=5
                    ) as response:
                        text = response.read().decode()
                    registry = registry_from_text(text)
                    family = next(
                        f for f in registry.families()
                        if f.name == "mas_store_request_seconds"
                    )
                    per_endpoint.append(dict(family.samples()))
                fleet_family = next(
                    f for f in snapshot.registry.families()
                    if f.name == "mas_store_request_seconds"
                )
                fleet_samples = {
                    values: child
                    for values, child in fleet_family.samples()
                    # The collector's own scrape loop keeps hitting GET
                    # /metrics between the fleet snapshot and the manual
                    # re-scrape below; only sweep-driven labels are stable.
                    if "/metrics" not in values[0]
                }
                assert fleet_samples  # the sweep generated HTTP traffic
                for values, fleet_child in fleet_samples.items():
                    fleet_counts = [c for _, c in fleet_child.bucket_counts()]
                    summed = [0] * len(fleet_counts)
                    for endpoint_samples in per_endpoint:
                        child = endpoint_samples.get(values)
                        if child is None:
                            continue
                        for index, (_, count) in enumerate(child.bucket_counts()):
                            summed[index] += count
                    assert fleet_counts == summed

                # 4. the dashboard serves the merged state over HTTP
                fleet_doc = _get_json(url + "/api/obs/fleet")
                assert fleet_doc["latest"]["healthy"] == 2
                summary_doc = _get_json(url + "/api/obs/summary")
                assert summary_doc["available"] is True
                assert "runner" in summary_doc["summary"]["layers"]

                collector.unsubscribe(subscriber)
