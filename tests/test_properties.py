"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.overwrite import InfeasibleTilingError
from repro.core.stream import OpKind, plan_rounds
from repro.core.tiling import TilingConfig, mas_footprint_bytes, score_block_bytes
from repro.hardware.buffer import BufferManager, BufferOverflowError
from repro.hardware.compute_units import matmul_cycles, matmul_macs, softmax_cycles
from repro.hardware.config import MacUnitSpec, VecUnitSpec
from repro.hardware.presets import constrained_edge_device, simulated_edge_device
from repro.numerics.reference import online_softmax, reference_attention, stable_softmax
from repro.numerics.tiled import flat_attention, fusemax_attention, mas_attention
from repro.schedulers.registry import list_schedulers, make_scheduler
from repro.sim.engine import critical_path_cycles, simulate_graph
from repro.sim.tasks import TaskGraph, TaskKind
from repro.utils.validation import ceil_div
from repro.workloads.attention import AttentionWorkload
from repro.workloads.suites import get_suite, list_suites

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
dims = st.integers(min_value=1, max_value=96)
small_dims = st.integers(min_value=1, max_value=48)


@st.composite
def workloads(draw):
    return AttentionWorkload(
        batch=draw(st.integers(1, 2)),
        heads=draw(st.integers(1, 4)),
        seq_q=draw(st.integers(1, 96)),
        seq_kv=draw(st.integers(1, 96)),
        emb=draw(st.sampled_from([8, 16, 32])),
    )


@st.composite
def tilings(draw):
    return TilingConfig(
        bb=draw(st.integers(1, 2)),
        hh=draw(st.integers(1, 4)),
        nq=draw(st.integers(1, 96)),
        nkv=draw(st.integers(1, 96)),
        kv_resident=draw(st.booleans()),
    )


@st.composite
def task_graphs(draw):
    """Random DAGs over a handful of resources (deps always point backwards)."""
    n = draw(st.integers(1, 40))
    resources = ["core0.mac", "core0.vec", "dma", ""]
    graph = TaskGraph(name="random")
    for i in range(n):
        num_deps = draw(st.integers(0, min(i, 3)))
        deps = draw(
            st.lists(st.integers(0, i - 1), min_size=num_deps, max_size=num_deps, unique=True)
        ) if i else []
        resource = draw(st.sampled_from(resources))
        cycles = 0 if resource == "" else draw(st.integers(0, 50))
        graph.add(f"t{i}", TaskKind.VECOP if resource else TaskKind.BARRIER,
                  resource, cycles, deps=deps)
    return graph


# --------------------------------------------------------------------------- #
# Numerics
# --------------------------------------------------------------------------- #
class TestSoftmaxProperties:
    @given(st.integers(1, 6), st.integers(1, 64), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_stable_softmax_is_a_distribution(self, rows, cols, seed):
        x = 10 * np.random.default_rng(seed).standard_normal((rows, cols))
        p = stable_softmax(x)
        assert np.all(p >= 0) and np.all(p <= 1)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-9)

    @given(st.integers(1, 64), st.integers(1, 70), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_online_softmax_matches_stable_for_any_tile(self, tile, cols, seed):
        x = 5 * np.random.default_rng(seed).standard_normal((3, cols))
        probs, _, _ = online_softmax(x, tile=tile)
        np.testing.assert_allclose(probs, stable_softmax(x), rtol=1e-6, atol=1e-10)


class TestExecutorEquivalence:
    @given(workloads(), st.integers(1, 64), st.integers(1, 64), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_all_dataflows_compute_exact_attention(self, workload, nq, nkv, seed):
        """Any tiling of any dataflow reproduces the reference (exactness invariant)."""
        rng = np.random.default_rng(seed)
        shape_q = (workload.batch, workload.heads, workload.seq_q, workload.emb)
        shape_kv = (workload.batch, workload.heads, workload.seq_kv, workload.emb)
        q = rng.standard_normal(shape_q)
        k = rng.standard_normal(shape_kv)
        v = rng.standard_normal(shape_kv)
        expected = reference_attention(q, k, v)
        for executor in (flat_attention, fusemax_attention, mas_attention):
            np.testing.assert_allclose(
                executor(q, k, v, nq=nq, nkv=nkv), expected, rtol=1e-6, atol=1e-8
            )


# --------------------------------------------------------------------------- #
# Cost models
# --------------------------------------------------------------------------- #
class TestCostModelProperties:
    @given(dims, dims, dims)
    @settings(max_examples=60, deadline=None)
    def test_matmul_cycles_lower_bounded_by_ideal(self, m, k, n):
        spec = MacUnitSpec(rows=16, cols=16, fill_overhead_cycles=0)
        ideal = ceil_div(matmul_macs(m, k, n), spec.peak_macs_per_cycle)
        assert matmul_cycles(spec, m, k, n) >= ideal

    @given(dims, dims, dims, st.integers(0, 64))
    @settings(max_examples=60, deadline=None)
    def test_matmul_cycles_monotone_in_overhead(self, m, k, n, overhead):
        low = matmul_cycles(MacUnitSpec(fill_overhead_cycles=0), m, k, n)
        high = matmul_cycles(MacUnitSpec(fill_overhead_cycles=overhead), m, k, n)
        assert high >= low

    @given(st.integers(1, 128), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_softmax_cycles_linear_in_rows(self, rows, cols):
        spec = VecUnitSpec()
        assert softmax_cycles(spec, rows, cols) == rows * softmax_cycles(spec, 1, cols)


# --------------------------------------------------------------------------- #
# Tiling / footprint
# --------------------------------------------------------------------------- #
class TestTilingProperties:
    @given(workloads(), tilings())
    @settings(max_examples=80, deadline=None)
    def test_clamp_never_exceeds_workload(self, workload, tiling):
        clamped = tiling.clamp_to(workload)
        assert clamped.bb <= workload.batch and clamped.hh <= workload.heads
        assert clamped.nq <= workload.seq_q and clamped.nkv <= workload.seq_kv
        clamped.validate_for(workload)

    @given(workloads(), tilings())
    @settings(max_examples=80, deadline=None)
    def test_blocks_cover_iteration_space(self, workload, tiling):
        tiling = tiling.clamp_to(workload)
        assert tiling.num_blocks(workload) * tiling.nq >= workload.seq_q
        assert tiling.num_kv_tiles(workload) * tiling.nkv >= workload.seq_kv

    @given(workloads(), tilings())
    @settings(max_examples=80, deadline=None)
    def test_footprint_positive_and_contains_score_blocks(self, workload, tiling):
        tiling = tiling.clamp_to(workload)
        footprint = mas_footprint_bytes(workload, tiling)
        assert footprint >= 2 * score_block_bytes(workload, tiling)


# --------------------------------------------------------------------------- #
# Stream rounds
# --------------------------------------------------------------------------- #
class TestStreamProperties:
    @given(st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_round_plan_is_complete_and_ordered(self, num_blocks):
        rounds = plan_rounds(num_blocks)
        seen: dict[tuple[str, int], int] = {}
        for rnd in rounds:
            for op in rnd.mac_ops + rnd.vec_ops:
                key = (op.kind.value, op.block)
                assert key not in seen, "operator scheduled twice"
                seen[key] = rnd.index
        for block in range(1, num_blocks + 1):
            assert seen[("QK", block)] < seen[("SM", block)] < seen[("PV", block)]
        assert len(seen) == 3 * num_blocks


# --------------------------------------------------------------------------- #
# Simulator
# --------------------------------------------------------------------------- #
class TestEngineProperties:
    @given(task_graphs())
    @settings(max_examples=60, deadline=None)
    def test_schedule_respects_all_constraints(self, graph):
        trace = simulate_graph(graph)
        records = {r.task.tid: r for r in trace.records}
        assert len(records) == len(graph)
        for task in graph:
            record = records[task.tid]
            assert record.finish == record.start + task.cycles
            for dep in task.deps:
                assert record.start >= records[dep].finish
        # Single-server resources never overlap two tasks.
        for resource in trace.resources():
            intervals = sorted(
                (r.start, r.finish) for r in trace.records if r.task.resource == resource
            )
            for (s1, f1), (s2, _) in zip(intervals, intervals[1:]):
                assert s2 >= f1

    @given(task_graphs())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounds(self, graph):
        trace = simulate_graph(graph)
        assert trace.total_cycles >= critical_path_cycles(graph)
        assert trace.total_cycles >= graph.total_cycles_lower_bound()
        assert trace.total_cycles <= sum(t.cycles for t in graph)

    @given(task_graphs())
    @settings(max_examples=30, deadline=None)
    def test_inorder_units_preserve_program_order(self, graph):
        trace = simulate_graph(graph)
        records = {r.task.tid: r for r in trace.records}
        for resource in trace.resources():
            if resource.startswith("dma"):
                continue
            tids = [t.tid for t in graph.tasks_on(resource)]
            starts = [records[tid].start for tid in tids]
            assert starts == sorted(starts)


# --------------------------------------------------------------------------- #
# Buffer manager
# --------------------------------------------------------------------------- #
class TestBufferProperties:
    @given(
        st.integers(64, 4096),
        st.lists(st.tuples(st.integers(1, 1024), st.booleans()), min_size=1, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_capacity_never_exceeded(self, capacity, requests):
        buf = BufferManager(capacity_bytes=capacity)
        for i, (size, evictable) in enumerate(requests):
            try:
                buf.alloc(f"a{i}", size, evictable=evictable)
            except BufferOverflowError:
                pass
            assert 0 <= buf.used_bytes <= capacity
            assert buf.free_bytes == capacity - buf.used_bytes

    @given(st.lists(st.integers(1, 256), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_alloc_then_free_everything_restores_capacity(self, sizes):
        capacity = sum(sizes)
        buf = BufferManager(capacity_bytes=capacity)
        for i, size in enumerate(sizes):
            buf.alloc(f"a{i}", size)
        assert buf.free_bytes == 0
        for i in range(len(sizes)):
            buf.free(f"a{i}")
        assert buf.used_bytes == 0 and buf.free_bytes == capacity


# --------------------------------------------------------------------------- #
# Workload / suite invariants
# --------------------------------------------------------------------------- #
class TestWorkloadInvariants:
    @given(workloads(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_bytes_and_macs_linear_in_batch(self, workload, batch):
        """Every byte and MAC count scales exactly linearly with batch size."""
        base = workload.with_batch(1)
        scaled = workload.with_batch(batch)
        for attribute in ("input_bytes", "output_bytes", "score_bytes", "qk_macs", "total_macs", "softmax_elements"):
            assert getattr(scaled, attribute) == batch * getattr(base, attribute)

    @given(workloads(), st.integers(1, 16), st.integers(1, 512), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_with_batch_and_with_seq_round_trip(self, workload, batch, seq_q, seq_kv):
        assert workload.with_batch(batch).with_batch(workload.batch) == workload
        assert workload.with_seq(seq_q, seq_kv).with_seq(workload.seq_q, workload.seq_kv) == workload
        assert workload.with_seq(seq_q).seq_kv == seq_q  # self-attention default
        assert workload.renamed("x").renamed(workload.name) == workload

    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_cross_attention_flag_matches_shape(self, workload):
        assert workload.is_cross_attention == (workload.seq_q != workload.seq_kv)
        assert workload.max_seq == max(workload.seq_q, workload.seq_kv)


class TestSuiteInvariants:
    @given(st.sampled_from(list_suites()), st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_with_batch_preserves_structure(self, name, batch):
        """Re-batching a suite keeps order and every non-batch shape field."""
        suite = get_suite(name)
        derived = suite.with_batch(batch)
        assert len(derived) == len(suite)
        assert len(set(derived.entry_names())) == len(derived)
        for before, after in zip(suite, derived):
            assert after.name == f"{before.name} @b{batch}"
            assert after.workload == before.workload.with_batch(batch).renamed(after.name)

    @given(st.sampled_from(list_suites()), st.sampled_from(["<=", ">="]), st.integers(1, 65536))
    @settings(max_examples=60, deadline=None)
    def test_seq_filter_is_a_subsequence(self, name, op, seq):
        """A seq filter keeps exactly the qualifying entries, in suite order."""
        suite = get_suite(name)
        satisfies = (lambda n: n <= seq) if op == "<=" else (lambda n: n >= seq)
        expected = [e.name for e in suite if satisfies(e.workload.max_seq)]
        if not expected:
            with pytest.raises(ValueError):
                suite.filter_seq(op, seq)
        else:
            assert suite.filter_seq(op, seq).entry_names() == expected


# --------------------------------------------------------------------------- #
# Analytic bounds
# --------------------------------------------------------------------------- #
#: Two devices so hard-infeasible / footprint-overflow branches both fire:
#: the paper's edge device (5 MB L1) and its L1-constrained variant.
_ANALYTIC_DEVICES = (simulated_edge_device(), constrained_edge_device())


@st.composite
def coarse_tilings(draw):
    """Tilings with row/tile sizes >= 8 so simulated graphs stay small."""
    return TilingConfig(
        bb=draw(st.integers(1, 2)),
        hh=draw(st.integers(1, 4)),
        nq=draw(st.integers(8, 96)),
        nkv=draw(st.integers(8, 96)),
        kv_resident=draw(st.booleans()),
    )


class TestAnalyticBoundProperties:
    @given(
        workloads(),
        coarse_tilings(),
        st.sampled_from(list_schedulers()),
        st.sampled_from(_ANALYTIC_DEVICES),
    )
    @settings(max_examples=40, deadline=None)
    def test_feasibility_and_bounds_agree_with_simulation(
        self, workload, tiling, name, hardware
    ):
        """analytic_bounds vs. the serial path, for every registered scheduler:
        feasibility agrees with ``fits``, hard infeasibility predicts the
        simulator's reject, and the bounds never exceed the simulated cost."""
        scheduler = make_scheduler(name, hardware)
        bounds = scheduler.analytic_bounds(workload, [tiling])
        clamped = tiling.clamp_to(workload)
        assert bounds.footprint_bytes[0] == scheduler.footprint_bytes(workload, clamped)
        fits = bounds.footprint_bytes[0] <= hardware.l1_bytes
        assert fits == scheduler.fits(workload, clamped)
        try:
            result = scheduler.simulate(workload, tiling)
        except InfeasibleTilingError:
            assert bounds.hard_infeasible[0]
            return
        assert not bounds.hard_infeasible[0]
        assert bounds.cycles[0] <= result.cycles
        assert bounds.energy_pj[0] <= result.energy_pj + 1e-6
        if bounds.exact:
            assert bounds.cycles[0] == result.cycles
            assert bounds.energy_pj[0] == pytest.approx(result.energy_pj)

    @given(
        workloads(),
        st.lists(tilings(), min_size=1, max_size=8),
        st.sampled_from(list_schedulers()),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_per_candidate_bounds(self, workload, tiling_list, name):
        """Vectorization is observationally pure: bounding N candidates at once
        equals bounding each alone (no cross-candidate state)."""
        scheduler = make_scheduler(name, simulated_edge_device())
        full = scheduler.analytic_bounds(workload, tiling_list)
        assert len(full) == len(tiling_list)
        for index, tiling in enumerate(tiling_list):
            single = scheduler.analytic_bounds(workload, [tiling])
            assert full.footprint_bytes[index] == single.footprint_bytes[0]
            assert full.hard_infeasible[index] == single.hard_infeasible[0]
            assert full.cycles[index] == single.cycles[0]
            assert full.energy_pj[index] == pytest.approx(single.energy_pj[0])
