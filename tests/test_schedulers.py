"""Unit and integration tests for the dataflow schedulers and their registry."""

from __future__ import annotations

import pytest

from repro.core.tiling import TilingConfig
from repro.schedulers import (
    ALL_SCHEDULERS,
    BASELINE_SCHEDULERS,
    FLATScheduler,
    FuseMaxScheduler,
    LayerWiseScheduler,
    MASAttentionScheduler,
    SoftPipeScheduler,
    TileFlowScheduler,
    get_scheduler,
    list_schedulers,
    make_scheduler,
)
from repro.sim.tasks import TaskKind, mac_resource, vec_resource
from repro.workloads.attention import AttentionWorkload

ALL_NAMES = ["layerwise", "softpipe", "flat", "tileflow", "fusemax", "mas"]


class TestRegistry:
    def test_all_schedulers_registered(self):
        assert list_schedulers() == ALL_NAMES
        assert set(BASELINE_SCHEDULERS) == set(ALL_NAMES) - {"mas"}

    def test_get_and_make(self, edge_hw):
        assert get_scheduler("flat") is FLATScheduler
        assert get_scheduler("MAS") is MASAttentionScheduler  # case-insensitive
        scheduler = make_scheduler("tileflow", edge_hw)
        assert isinstance(scheduler, TileFlowScheduler)
        assert scheduler.hardware is edge_hw
        with pytest.raises(KeyError):
            get_scheduler("flash-attention")

    def test_display_metadata(self):
        assert LayerWiseScheduler.overlaps_compute is False
        assert FLATScheduler.overlaps_compute is False
        assert SoftPipeScheduler.overlaps_compute is True
        assert MASAttentionScheduler.overlaps_compute is True
        assert FuseMaxScheduler.searchable is False
        assert MASAttentionScheduler.searchable is True


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEverySchedulerContract:
    """Contract tests every dataflow must satisfy."""

    def test_builds_and_simulates(self, name, edge_hw, small_workload):
        scheduler = make_scheduler(name, edge_hw)
        result = scheduler.simulate(small_workload)
        assert result.cycles > 0
        assert result.energy_pj > 0
        assert result.scheduler == name

    def test_respects_minimum_dram_traffic(self, name, edge_hw, small_workload):
        """No dataflow can read less than Q+K+V or write less than O."""
        scheduler = make_scheduler(name, edge_hw)
        result = scheduler.simulate(small_workload)
        assert result.dram_reads >= small_workload.input_bytes
        assert result.dram_writes >= small_workload.output_bytes

    def test_identical_arithmetic_work(self, name, edge_hw, small_workload):
        """Section 5.3.3: every dataflow performs the same MatMul work (scheduling only
        changes ordering), modulo FuseMax's online-softmax corrections on the VEC unit
        and redo tiles from the overwrite path (absent here)."""
        scheduler = make_scheduler(name, edge_hw)
        result = scheduler.simulate(small_workload)
        assert result.counters.mac_ops == small_workload.total_macs
        assert result.counters.vec_ops >= small_workload.softmax_elements

    def test_footprint_fits_l1_with_default_tiling(self, name, edge_hw, small_workload):
        scheduler = make_scheduler(name, edge_hw)
        tiling = scheduler.default_tiling(small_workload)
        assert scheduler.footprint_bytes(small_workload, tiling) <= edge_hw.l1_bytes

    def test_makespan_at_least_busiest_resource(self, name, edge_hw, small_workload):
        scheduler = make_scheduler(name, edge_hw)
        tiling = scheduler.default_tiling(small_workload)
        build = scheduler.build(small_workload, tiling)
        assert scheduler.simulate(small_workload, tiling).cycles >= (
            build.graph.total_cycles_lower_bound()
        )

    def test_cross_attention_supported(self, name, edge_hw):
        cross = AttentionWorkload(batch=1, heads=2, seq_q=64, seq_kv=128, emb=32, name="cross")
        result = make_scheduler(name, edge_hw).simulate(cross)
        assert result.cycles > 0


class TestDataflowSpecifics:
    def test_layerwise_writes_intermediates_to_dram(self, edge_hw, small_workload):
        lw = LayerWiseScheduler(edge_hw).simulate(small_workload)
        # C and P both round-trip through DRAM on top of the mandatory O write.
        assert lw.dram_writes >= small_workload.output_bytes + 2 * small_workload.score_bytes

    def test_softpipe_writes_p_only(self, edge_hw, small_workload):
        sp = SoftPipeScheduler(edge_hw).simulate(small_workload)
        lw = LayerWiseScheduler(edge_hw).simulate(small_workload)
        assert sp.dram_writes >= small_workload.output_bytes + small_workload.score_bytes
        assert sp.dram_writes < lw.dram_writes

    def test_fused_dataflows_write_only_output(self, edge_hw, small_workload):
        """FLAT, TileFlow, FuseMax and MAS keep C/P on-chip (Section 5.4.1)."""
        for name in ("flat", "tileflow", "fusemax", "mas"):
            result = make_scheduler(name, edge_hw).simulate(small_workload)
            assert result.dram_writes == small_workload.output_bytes, name

    def test_flat_does_not_overlap_mac_and_vec(self, edge_hw, small_workload):
        flat = FLATScheduler(edge_hw)
        tiling = flat.default_tiling(small_workload)
        result = flat.simulate(small_workload, tiling)
        overlap = result.trace.overlap_cycles(mac_resource(0), vec_resource(0))
        vec_busy = result.trace.busy_cycles(vec_resource(0))
        assert overlap < 0.1 * max(vec_busy, 1)

    def test_mas_overlaps_mac_and_vec(self, edge_hw, small_workload):
        mas = MASAttentionScheduler(edge_hw)
        result = mas.simulate(small_workload, TilingConfig(nq=32, nkv=32, kv_resident=True))
        overlap = result.trace.overlap_cycles(mac_resource(0), vec_resource(0))
        bound = min(
            result.trace.busy_cycles(mac_resource(0)),
            result.trace.busy_cycles(vec_resource(0)),
        )
        assert overlap > 0.4 * bound

    def test_fusemax_has_extra_vec_work(self, edge_hw, small_workload):
        """Online softmax pays correction operations the two-pass softmax does not."""
        fusemax = FuseMaxScheduler(edge_hw).simulate(small_workload)
        mas = MASAttentionScheduler(edge_hw).simulate(small_workload)
        assert fusemax.counters.vec_ops > mas.counters.vec_ops

    def test_fusemax_footprint_smaller_than_mas(self, edge_hw, small_workload, small_tiling):
        assert FuseMaxScheduler(edge_hw).footprint_bytes(small_workload, small_tiling) < (
            MASAttentionScheduler(edge_hw).footprint_bytes(small_workload, small_tiling)
        )

    def test_tileflow_emits_round_barriers(self, edge_hw, small_workload):
        tf = TileFlowScheduler(edge_hw)
        build = tf.build(small_workload, tf.default_tiling(small_workload))
        assert any(t.kind == TaskKind.BARRIER for t in build.graph)

    def test_mas_metadata_exposed(self, edge_hw, small_workload):
        result = MASAttentionScheduler(edge_hw).simulate(small_workload)
        assert "num_overwrites" in result.metadata
        assert "footprint_bytes" in result.metadata
        assert "tiling" in result.metadata


class TestRelativePerformance:
    """Integration: the paper's qualitative ordering holds on the edge device."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.hardware.presets import simulated_edge_device

        hw = simulated_edge_device()
        workload = AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="itest")
        out = {}
        for name in ALL_NAMES:
            scheduler = make_scheduler(name, hw)
            out[name] = scheduler.simulate(workload)
        return out

    def test_mas_is_fastest(self, results):
        mas = results["mas"].cycles
        for name, result in results.items():
            assert result.cycles >= mas, f"{name} beat MAS-Attention"

    def test_layerwise_is_slowest(self, results):
        lw = results["layerwise"].cycles
        for name, result in results.items():
            assert result.cycles <= lw, f"{name} slower than Layer-Wise"

    def test_fused_beats_unfused(self, results):
        assert results["flat"].cycles < results["layerwise"].cycles
        assert results["flat"].cycles < results["softpipe"].cycles

    def test_mas_beats_flat_by_meaningful_margin(self, results):
        """The headline claim, loosely: pipelining MAC and VEC beats sequential fusion."""
        assert results["flat"].cycles / results["mas"].cycles > 1.2

    def test_energy_ordering(self, results):
        assert results["mas"].energy_pj < results["layerwise"].energy_pj
        assert results["mas"].energy_pj < results["softpipe"].energy_pj
