"""Unit tests for the tiling search (space, objective, algorithms, auto-tuner)."""

from __future__ import annotations

import pytest

from repro.core.tiling import TilingConfig
from repro.schedulers import FLATScheduler, MASAttentionScheduler, make_scheduler
from repro.search import (
    AutoTuner,
    GeneticSearch,
    GridSearch,
    MCTSSearch,
    RandomSearch,
    SchedulerObjective,
    SearchHistory,
    TilingSearchSpace,
    tune_scheduler,
)
from repro.search.autotuner import STRATEGIES
from repro.search.objective import TilingEvaluation
from repro.search.space import DECISIONS
from repro.utils.rng import make_rng
from repro.utils.units import KB
from repro.workloads.attention import AttentionWorkload


@pytest.fixture
def workload():
    return AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="search-wl")


@pytest.fixture
def space(workload, edge_hw):
    return TilingSearchSpace(workload, edge_hw)


@pytest.fixture
def objective(workload, edge_hw):
    return SchedulerObjective(MASAttentionScheduler(edge_hw), workload)


class TestSearchSpace:
    def test_candidates_respect_workload_dims(self, space, workload):
        assert max(space.candidates("nq")) == workload.seq_q
        assert max(space.candidates("nkv")) == workload.seq_kv
        assert max(space.candidates("hh")) == workload.heads
        assert set(space.candidates("kv_resident")) == {False, True}

    def test_size_is_product_of_dims(self, space):
        expected = 1
        for decision in DECISIONS:
            expected *= len(space.candidates(decision))
        assert space.size == expected

    def test_enumerate_covers_the_space(self, space):
        points = list(space.enumerate())
        assert len(points) == space.size
        assert len({(t.bb, t.hh, t.nq, t.nkv, t.kv_resident) for t in points}) == space.size

    def test_make_validates_choices(self, space):
        tiling = space.make(nq=64, nkv=128, kv_resident=True)
        assert tiling.nq == 64 and tiling.kv_resident
        with pytest.raises(ValueError):
            space.make(nq=63)
        with pytest.raises(KeyError):
            space.candidates("depth")

    def test_sample_and_default_are_in_space(self, space):
        rng = make_rng(0)
        for _ in range(20):
            t = space.sample(rng)
            assert t.nq in space.candidates("nq") and t.nkv in space.candidates("nkv")
        default = space.default()
        assert default.nq in space.candidates("nq")

    def test_mutate_changes_at_most_one_decision(self, space):
        rng = make_rng(1)
        base = space.default()
        for _ in range(30):
            mutated = space.mutate(base, rng)
            diffs = sum(
                getattr(base, d) != getattr(mutated, d) for d in DECISIONS
            )
            assert diffs <= 1

    def test_crossover_mixes_parents(self, space):
        rng = make_rng(2)
        a = space.make(nq=space.candidates("nq")[0], nkv=space.candidates("nkv")[0])
        b = space.make(nq=space.candidates("nq")[-1], nkv=space.candidates("nkv")[-1])
        child = space.crossover(a, b, rng)
        assert child.nq in (a.nq, b.nq) and child.nkv in (a.nkv, b.nkv)

    def test_candidate_cap(self, edge_hw):
        long_wl = AttentionWorkload.self_attention(heads=2, seq=65536, emb=64)
        space = TilingSearchSpace(long_wl, edge_hw, max_candidates_per_dim=6)
        assert len(space.candidates("nq")) <= 6
        assert len(space.candidates("nkv")) <= 6


class TestObjective:
    def test_evaluation_and_caching(self, objective):
        tiling = TilingConfig(nq=64, nkv=64)
        first = objective.evaluate(tiling)
        assert first.feasible and first.cycles > 0
        assert first.value == first.cycles
        before = objective.num_evaluations
        again = objective.evaluate(tiling)
        assert objective.num_evaluations == before  # cached
        assert again.value == first.value
        assert objective.cache_size >= 1

    def test_infeasible_tilings_get_infinite_value(self, workload, edge_hw):
        """Baselines reject tilings whose footprint exceeds L1 outright."""
        tiny = edge_hw.with_l1_bytes(64 * KB)
        objective = SchedulerObjective(FLATScheduler(tiny), workload)
        evaluation = objective.evaluate(TilingConfig(nq=256, nkv=256, kv_resident=True))
        assert not evaluation.feasible and evaluation.value == float("inf")

    def test_mas_allows_overflow_but_not_infeasibility(self, workload, edge_hw):
        tiny = edge_hw.with_l1_bytes(96 * KB)
        objective = SchedulerObjective(MASAttentionScheduler(tiny), workload)
        # Overflows L1 but the overwrite strategy handles it -> still feasible.
        moderate = objective.evaluate(TilingConfig(nq=32, nkv=64, kv_resident=True))
        assert moderate.feasible
        # Non-evictable residency alone exceeds L1 -> infeasible.
        absurd = objective.evaluate(TilingConfig(nq=256, nkv=256))
        assert not absurd.feasible

    def test_metric_selection(self, workload, edge_hw):
        cycles_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="cycles")
        energy_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="energy")
        edp_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="edp")
        tiling = TilingConfig(nq=64, nkv=64)
        c, e, p = (o.evaluate(tiling) for o in (cycles_obj, energy_obj, edp_obj))
        assert c.value == c.cycles
        assert e.value == pytest.approx(e.energy_pj)
        assert p.value == pytest.approx(c.cycles * e.energy_pj, rel=1e-6)
        with pytest.raises(ValueError):
            SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="power")

    def test_better_than(self):
        a = TilingEvaluation(TilingConfig(), True, 100, 1.0, 100.0)
        b = TilingEvaluation(TilingConfig(), True, 200, 1.0, 200.0)
        assert a.better_than(b) and not b.better_than(a) and a.better_than(None)


class TestHistory:
    def test_best_tracking_and_convergence(self, objective, space):
        history = SearchHistory(algorithm="manual")
        values = []
        for nq in space.candidates("nq"):
            evaluation = objective.evaluate(space.make(nq=nq, nkv=64))
            history.record(evaluation)
            values.append(evaluation.value)
        assert history.num_iterations == len(values)
        assert history.best_value == min(values)
        curve = history.convergence_curve()
        assert [v for _, v in curve] == [min(values[: i + 1]) for i in range(len(values))]
        assert history.improvement_factor >= 1.0
        rows = history.as_rows()
        assert len(rows) == len(values) and "best_value" in rows[0]


@pytest.mark.parametrize("algorithm_cls", [GridSearch, RandomSearch, MCTSSearch, GeneticSearch])
class TestAlgorithms:
    def test_respects_budget_and_finds_feasible(self, algorithm_cls, objective, space):
        history = algorithm_cls(seed=0).run(objective, space, budget=25)
        assert 1 <= history.num_iterations <= 25
        assert history.best is not None and history.best.feasible
        assert history.best_value < float("inf")

    def test_deterministic_given_seed(self, algorithm_cls, workload, edge_hw, space):
        def run():
            objective = SchedulerObjective(MASAttentionScheduler(edge_hw), workload)
            return algorithm_cls(seed=123).run(objective, space, budget=15).best_value

        assert run() == run()


class TestSmartSearchBeatsRandom:
    def test_mcts_and_ga_no_worse_than_first_sample(self, objective, space):
        for cls in (MCTSSearch, GeneticSearch):
            history = cls(seed=0).run(objective, space, budget=30)
            assert history.best_value <= history.first_value


class TestAutoTuner:
    def test_strategy_defaults_per_device(self, edge_hw):
        from repro.hardware.presets import davinci_like_npu

        assert AutoTuner(edge_hw).strategy == "mcts+ga"
        assert AutoTuner(davinci_like_npu()).strategy == "grid"
        with pytest.raises(ValueError):
            AutoTuner(edge_hw, strategy="simulated-annealing")
        assert set(STRATEGIES) == {"mcts+ga", "mcts", "ga", "grid", "random"}

    def test_tune_improves_over_default(self, edge_hw, workload):
        scheduler = MASAttentionScheduler(edge_hw)
        default_cycles = scheduler.simulate(workload).cycles
        tuning = AutoTuner(edge_hw, budget=40, seed=0).tune(scheduler, workload)
        assert tuning.best_value <= default_cycles
        assert tuning.num_evaluations <= 40 + 1
        assert tuning.best_tiling.nq <= workload.seq_q

    def test_tuner_caches_results(self, edge_hw, workload):
        tuner = AutoTuner(edge_hw, budget=20)
        first = tuner.tune("mas", workload)
        second = tuner.tune("mas", workload)
        assert first is second

    def test_tune_scheduler_convenience(self, edge_hw, workload):
        result = tune_scheduler("flat", workload, edge_hw, budget=15, strategy="random")
        assert result.scheduler == "flat" and result.strategy == "random"
        assert result.best_value < float("inf")

    def test_mcts_ga_history_contains_both_phases(self, edge_hw, workload):
        tuning = AutoTuner(edge_hw, strategy="mcts+ga", budget=30).tune("mas", workload)
        phases = {rec.phase for rec in tuning.history.records}
        assert "mcts" in phases and "ga" in phases
