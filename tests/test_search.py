"""Unit tests for the tiling search (space, objective, algorithms, auto-tuner)."""

from __future__ import annotations

import pytest

from repro.core.tiling import TilingConfig
from repro.schedulers import FLATScheduler, MASAttentionScheduler, make_scheduler
from repro.search import (
    AutoTuner,
    GeneticSearch,
    GridSearch,
    MCTSSearch,
    ParallelEvaluator,
    RandomSearch,
    SchedulerObjective,
    SearchHistory,
    TilingSearchSpace,
    resolve_backend,
    resolve_workers,
    tune_scheduler,
)
from repro.search.autotuner import STRATEGIES
from repro.search.objective import TilingEvaluation
from repro.search.space import DECISIONS
from repro.utils.rng import make_rng
from repro.utils.units import KB
from repro.workloads.attention import AttentionWorkload


@pytest.fixture
def workload():
    return AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="search-wl")


@pytest.fixture
def space(workload, edge_hw):
    return TilingSearchSpace(workload, edge_hw)


@pytest.fixture
def objective(workload, edge_hw):
    return SchedulerObjective(MASAttentionScheduler(edge_hw), workload)


class TestSearchSpace:
    def test_candidates_respect_workload_dims(self, space, workload):
        assert max(space.candidates("nq")) == workload.seq_q
        assert max(space.candidates("nkv")) == workload.seq_kv
        assert max(space.candidates("hh")) == workload.heads
        assert set(space.candidates("kv_resident")) == {False, True}

    def test_size_is_product_of_dims(self, space):
        expected = 1
        for decision in DECISIONS:
            expected *= len(space.candidates(decision))
        assert space.size == expected

    def test_enumerate_covers_the_space(self, space):
        points = list(space.enumerate())
        assert len(points) == space.size
        assert len({(t.bb, t.hh, t.nq, t.nkv, t.kv_resident) for t in points}) == space.size

    def test_make_validates_choices(self, space):
        tiling = space.make(nq=64, nkv=128, kv_resident=True)
        assert tiling.nq == 64 and tiling.kv_resident
        with pytest.raises(ValueError):
            space.make(nq=63)
        with pytest.raises(KeyError):
            space.candidates("depth")

    def test_sample_and_default_are_in_space(self, space):
        rng = make_rng(0)
        for _ in range(20):
            t = space.sample(rng)
            assert t.nq in space.candidates("nq") and t.nkv in space.candidates("nkv")
        default = space.default()
        assert default.nq in space.candidates("nq")

    def test_mutate_changes_at_most_one_decision(self, space):
        rng = make_rng(1)
        base = space.default()
        for _ in range(30):
            mutated = space.mutate(base, rng)
            diffs = sum(
                getattr(base, d) != getattr(mutated, d) for d in DECISIONS
            )
            assert diffs <= 1

    def test_crossover_mixes_parents(self, space):
        rng = make_rng(2)
        a = space.make(nq=space.candidates("nq")[0], nkv=space.candidates("nkv")[0])
        b = space.make(nq=space.candidates("nq")[-1], nkv=space.candidates("nkv")[-1])
        child = space.crossover(a, b, rng)
        assert child.nq in (a.nq, b.nq) and child.nkv in (a.nkv, b.nkv)

    def test_candidate_cap(self, edge_hw):
        long_wl = AttentionWorkload.self_attention(heads=2, seq=65536, emb=64)
        space = TilingSearchSpace(long_wl, edge_hw, max_candidates_per_dim=6)
        assert len(space.candidates("nq")) <= 6
        assert len(space.candidates("nkv")) <= 6


class TestObjective:
    def test_evaluation_and_caching(self, objective):
        tiling = TilingConfig(nq=64, nkv=64)
        first = objective.evaluate(tiling)
        assert first.feasible and first.cycles > 0
        assert first.value == first.cycles
        before = objective.num_evaluations
        again = objective.evaluate(tiling)
        assert objective.num_evaluations == before  # cached
        assert again.value == first.value
        assert objective.cache_size >= 1

    def test_infeasible_tilings_get_infinite_value(self, workload, edge_hw):
        """Baselines reject tilings whose footprint exceeds L1 outright."""
        tiny = edge_hw.with_l1_bytes(64 * KB)
        objective = SchedulerObjective(FLATScheduler(tiny), workload)
        evaluation = objective.evaluate(TilingConfig(nq=256, nkv=256, kv_resident=True))
        assert not evaluation.feasible and evaluation.value == float("inf")

    def test_mas_allows_overflow_but_not_infeasibility(self, workload, edge_hw):
        tiny = edge_hw.with_l1_bytes(96 * KB)
        objective = SchedulerObjective(MASAttentionScheduler(tiny), workload)
        # Overflows L1 but the overwrite strategy handles it -> still feasible.
        moderate = objective.evaluate(TilingConfig(nq=32, nkv=64, kv_resident=True))
        assert moderate.feasible
        # Non-evictable residency alone exceeds L1 -> infeasible.
        absurd = objective.evaluate(TilingConfig(nq=256, nkv=256))
        assert not absurd.feasible

    def test_metric_selection(self, workload, edge_hw):
        cycles_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="cycles")
        energy_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="energy")
        edp_obj = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="edp")
        tiling = TilingConfig(nq=64, nkv=64)
        c, e, p = (o.evaluate(tiling) for o in (cycles_obj, energy_obj, edp_obj))
        assert c.value == c.cycles
        assert e.value == pytest.approx(e.energy_pj)
        assert p.value == pytest.approx(c.cycles * e.energy_pj, rel=1e-6)
        with pytest.raises(ValueError):
            SchedulerObjective(MASAttentionScheduler(edge_hw), workload, metric="power")

    def test_better_than(self):
        a = TilingEvaluation(TilingConfig(), True, 100, 1.0, 100.0)
        b = TilingEvaluation(TilingConfig(), True, 200, 1.0, 200.0)
        assert a.better_than(b) and not b.better_than(a) and a.better_than(None)

    def test_infeasible_evaluations_are_counted_once(self, workload, edge_hw):
        """Infeasible candidates are real search work: counted when fresh,
        not counted again when memoized."""
        tiny = edge_hw.with_l1_bytes(64 * KB)
        objective = SchedulerObjective(FLATScheduler(tiny), workload)
        bad = TilingConfig(nq=256, nkv=256, kv_resident=True)
        evaluation = objective.evaluate(bad)
        assert not evaluation.feasible
        assert objective.num_evaluations == 1
        objective.evaluate(bad)
        assert objective.num_evaluations == 1  # memoized re-visit is free


class TestBatchedEvaluation:
    def test_batch_matches_serial_order_and_accounting(self, workload, edge_hw):
        serial = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, workers=1)
        batched = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, workers=1)
        tilings = [
            TilingConfig(nq=64, nkv=64),
            TilingConfig(nq=32, nkv=64),
            TilingConfig(nq=64, nkv=64),  # duplicate: must be evaluated once
            TilingConfig(nq=128, nkv=32),
        ]
        expected = [serial.evaluate(t) for t in tilings]
        got = batched.evaluate_batch(tilings)
        assert [e.value for e in got] == [e.value for e in expected]
        assert [e.tiling for e in got] == [e.tiling for e in expected]
        assert got[0] is got[2]  # one evaluation object for the duplicate
        assert batched.num_evaluations == serial.num_evaluations == 3
        assert batched.cache_size == 3

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_batch_bit_identical(self, workload, edge_hw, backend):
        tilings = [
            TilingConfig(nq=nq, nkv=nkv, kv_resident=kv)
            for nq in (32, 64, 128)
            for nkv in (32, 64)
            for kv in (False, True)
        ]
        results = {}
        for workers in (1, 4):
            objective = SchedulerObjective(
                MASAttentionScheduler(edge_hw), workload, workers=workers, backend=backend
            )
            try:
                batch = objective.evaluate_batch(tilings)
                results[workers] = (
                    [(e.tiling, e.value, e.cycles, e.energy_pj, e.feasible) for e in batch],
                    objective.num_evaluations,
                )
            finally:
                objective.close()
        assert results[1] == results[4]

    def test_worker_and_backend_resolution(self, workload, edge_hw, monkeypatch):
        monkeypatch.delenv("MAS_SEARCH_WORKERS", raising=False)
        monkeypatch.delenv("MAS_SEARCH_BACKEND", raising=False)
        assert resolve_workers(None) == 1 and resolve_workers(3) == 3
        assert resolve_backend(None) == "thread" and resolve_backend("process") == "process"
        monkeypatch.setenv("MAS_SEARCH_WORKERS", "2")
        monkeypatch.setenv("MAS_SEARCH_BACKEND", "process")
        assert resolve_workers(None) == 2
        assert resolve_backend(None) == "process"
        objective = SchedulerObjective(MASAttentionScheduler(edge_hw), workload)
        assert objective.workers == 2
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_backend("fiber")
        monkeypatch.setenv("MAS_SEARCH_WORKERS", "two")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_evaluator_pool_lifecycle(self, workload, edge_hw):
        objective = SchedulerObjective(MASAttentionScheduler(edge_hw), workload, workers=2)
        evaluator = ParallelEvaluator(objective, workers=2, backend="thread")
        with evaluator:
            batch = evaluator.evaluate([TilingConfig(nq=64, nkv=64), TilingConfig(nq=32, nkv=32)])
            assert len(batch) == 2 and evaluator._pool is not None
        assert evaluator._pool is None  # context exit shuts the pool down
        evaluator.close()  # idempotent


class TestHistory:
    def test_best_tracking_and_convergence(self, objective, space):
        history = SearchHistory(algorithm="manual")
        values = []
        for nq in space.candidates("nq"):
            evaluation = objective.evaluate(space.make(nq=nq, nkv=64))
            history.record(evaluation)
            values.append(evaluation.value)
        assert history.num_iterations == len(values)
        assert history.best_value == min(values)
        curve = history.convergence_curve()
        assert [v for _, v in curve] == [min(values[: i + 1]) for i in range(len(values))]
        assert history.improvement_factor >= 1.0
        rows = history.as_rows()
        assert len(rows) == len(values) and "best_value" in rows[0]

    def test_extend_carries_evaluations_verbatim(self):
        """Concatenating phase histories must not fabricate evaluations.

        Under the ``energy``/``edp`` metrics the record values are not cycle
        counts, so ``extend`` has to keep the original best evaluation (with
        its real cycles and energy) instead of reconstructing one from the
        record value.
        """
        inf = float("inf")
        first = SearchHistory(algorithm="mcts")
        e1 = TilingEvaluation(TilingConfig(nq=32), True, cycles=100, energy_pj=5.0, value=5.0)
        first.record(e1, phase="mcts")
        second = SearchHistory(algorithm="ga")
        e2 = TilingEvaluation(TilingConfig(nq=64), True, cycles=200, energy_pj=3.0, value=3.0)
        e3 = TilingEvaluation(TilingConfig(nq=16), False, cycles=0, energy_pj=0.0, value=inf)
        second.record(e2, phase="ga")
        second.record(e3, phase="ga")

        combined = SearchHistory(algorithm="mcts+ga")
        combined.extend(first)
        combined.extend(second)
        assert combined.best is e2  # the original evaluation object, untouched
        assert combined.best.cycles == 200 and combined.best.energy_pj == 3.0
        assert [r.iteration for r in combined.records] == [0, 1, 2]
        assert [r.value for r in combined.records] == [5.0, 3.0, inf]
        assert [r.best_value for r in combined.records] == [5.0, 3.0, 3.0]
        assert [r.phase for r in combined.records] == ["mcts", "ga", "ga"]
        assert combined.best_value == 3.0

    def test_extend_empty_and_unlabelled_phases(self):
        source = SearchHistory(algorithm="mcts")
        source.record(TilingEvaluation(TilingConfig(), True, 10, 1.0, 10.0))
        combined = SearchHistory(algorithm="mcts+ga")
        combined.extend(SearchHistory(algorithm="ga"))  # empty: no-op
        assert combined.num_iterations == 0 and combined.best is None
        combined.extend(source)
        assert combined.records[0].phase == "mcts"  # falls back to the algorithm name


@pytest.mark.parametrize("algorithm_cls", [GridSearch, RandomSearch, MCTSSearch, GeneticSearch])
class TestAlgorithms:
    def test_respects_budget_and_finds_feasible(self, algorithm_cls, objective, space):
        history = algorithm_cls(seed=0).run(objective, space, budget=25)
        assert 1 <= history.num_iterations <= 25
        assert history.best is not None and history.best.feasible
        assert history.best_value < float("inf")

    def test_deterministic_given_seed(self, algorithm_cls, workload, edge_hw, space):
        def run():
            objective = SchedulerObjective(MASAttentionScheduler(edge_hw), workload)
            return algorithm_cls(seed=123).run(objective, space, budget=15).best_value

        assert run() == run()


class TestSmartSearchBeatsRandom:
    def test_mcts_and_ga_no_worse_than_first_sample(self, objective, space):
        for cls in (MCTSSearch, GeneticSearch):
            history = cls(seed=0).run(objective, space, budget=30)
            assert history.best_value <= history.first_value


def _history_rows(history: SearchHistory) -> list[tuple]:
    return [
        (rec.iteration, rec.tiling, rec.value, rec.best_value, rec.phase)
        for rec in history.records
    ]


class TestIntraPairDeterminism:
    """GA/MCTS with parallel candidate evaluation are bit-identical to serial."""

    @pytest.mark.parametrize("metric", ["cycles", "energy", "edp"])
    @pytest.mark.parametrize(
        "make_search",
        [
            lambda: GeneticSearch(seed=0, population_size=8),
            lambda: MCTSSearch(seed=0, rollout_batch=4),
        ],
        ids=["ga", "mcts"],
    )
    def test_workers_do_not_change_results(self, workload, edge_hw, space, metric, make_search):
        outcomes = []
        for workers in (1, 4):
            objective = SchedulerObjective(
                MASAttentionScheduler(edge_hw), workload, metric=metric, workers=workers
            )
            try:
                history = make_search().run(objective, space, budget=20)
            finally:
                objective.close()
            outcomes.append(
                (_history_rows(history), history.best_tiling, objective.num_evaluations)
            )
        assert outcomes[0] == outcomes[1]

    def test_autotuner_mcts_ga_workers_identical(self, workload, edge_hw):
        results = []
        for workers in (1, 4):
            tuning = AutoTuner(
                edge_hw, strategy="mcts+ga", budget=24, seed=0, workers=workers
            ).tune("mas", workload)
            results.append(
                (
                    _history_rows(tuning.history),
                    tuning.best_tiling,
                    tuning.best_value,
                    tuning.objective_evaluations,
                )
            )
        assert results[0] == results[1]


class TestGABudgetAccounting:
    def test_initial_population_truncated_at_budget(self, objective, space):
        """budget < population_size must not overshoot: the initial population
        used to be evaluated unconditionally."""
        history = GeneticSearch(seed=0, population_size=16).run(objective, space, budget=5)
        assert history.num_iterations == 5
        assert history.best is not None

    @pytest.mark.parametrize("budget", [1, 9, 14])
    def test_budget_respected_exactly_across_generations(self, workload, edge_hw, space, budget):
        """Mid-generation expiry: exactly ``budget`` evaluations are recorded
        and the unevaluated remainder never enters selection (no ``inf``
        placeholder fitness is ranked as an elite)."""
        objective = SchedulerObjective(MASAttentionScheduler(edge_hw), workload)
        history = GeneticSearch(seed=0, population_size=6, elitism=2).run(
            objective, space, budget=budget
        )
        assert history.num_iterations == budget
        feasible = [rec.value for rec in history.records if rec.value != float("inf")]
        if feasible:
            assert history.best_value == min(feasible)

    def test_mcts_rollout_batch_respects_budget(self, objective, space):
        history = MCTSSearch(seed=0, rollout_batch=4).run(objective, space, budget=10)
        assert history.num_iterations == 10  # 4 + 4 + 2, truncated final batch

    def test_mcts_rollout_batch_validated(self):
        with pytest.raises(ValueError):
            MCTSSearch(rollout_batch=0)


class TestAutoTuner:
    def test_strategy_defaults_per_device(self, edge_hw):
        from repro.hardware.presets import davinci_like_npu

        assert AutoTuner(edge_hw).strategy == "mcts+ga"
        assert AutoTuner(davinci_like_npu()).strategy == "grid"
        with pytest.raises(ValueError):
            AutoTuner(edge_hw, strategy="simulated-annealing")
        assert set(STRATEGIES) == {"mcts+ga", "mcts", "ga", "grid", "random"}

    def test_tune_improves_over_default(self, edge_hw, workload):
        scheduler = MASAttentionScheduler(edge_hw)
        default_cycles = scheduler.simulate(workload).cycles
        tuning = AutoTuner(edge_hw, budget=40, seed=0).tune(scheduler, workload)
        assert tuning.best_value <= default_cycles
        assert tuning.num_evaluations <= 40 + 1
        assert tuning.best_tiling.nq <= workload.seq_q

    def test_tuner_caches_results(self, edge_hw, workload):
        tuner = AutoTuner(edge_hw, budget=20)
        first = tuner.tune("mas", workload)
        second = tuner.tune("mas", workload)
        assert first is second

    def test_explicit_budget_is_validated_not_ignored(self, edge_hw, workload):
        tuner = AutoTuner(edge_hw, budget=30, strategy="random")
        with pytest.raises(ValueError):
            tuner.tune("mas", workload, budget=0)
        small = tuner.tune("mas", workload, budget=3, use_cache=False)
        assert small.num_search_evaluations == 3  # not the constructor's 30

    def test_cache_hit_requires_full_search_budget(self, edge_hw, workload):
        """The injected default-tiling record must not count toward the budget."""
        tuner = AutoTuner(edge_hw, budget=10, strategy="random", seed=0)
        first = tuner.tune("mas", workload, budget=5)
        assert first.num_search_evaluations == 5
        assert first.num_evaluations == 6  # + the default-tiling candidate
        assert tuner.tune("mas", workload, budget=5) is first
        # Requesting one more evaluation than the cached search spent must
        # re-search; previously num_evaluations (6) satisfied budget=6.
        bigger = tuner.tune("mas", workload, budget=6)
        assert bigger is not first
        assert bigger.num_search_evaluations >= 6

    def test_cache_hit_when_search_exhausts_its_space(self, edge_hw):
        """A search that ran out of candidates below budget is still complete."""
        from repro.hardware.presets import davinci_like_npu

        tiny = AttentionWorkload.self_attention(heads=2, seq=64, emb=16, name="tiny")
        tuner = AutoTuner(davinci_like_npu(), strategy="grid", budget=10_000)
        first = tuner.tune("mas", tiny)
        assert first.num_search_evaluations < 10_000  # grid exhausted early
        assert first.budget == 10_000
        assert tuner.tune("mas", tiny) is first
        assert tuner.tune("mas", tiny, budget=first.num_search_evaluations + 1) is first

    def test_tune_scheduler_convenience(self, edge_hw, workload):
        result = tune_scheduler("flat", workload, edge_hw, budget=15, strategy="random")
        assert result.scheduler == "flat" and result.strategy == "random"
        assert result.best_value < float("inf")

    def test_objective_evaluations_recorded(self, edge_hw, workload):
        """The tuning reports real (non-memoized) search work, which can be
        below the history length when candidates repeat."""
        tuning = AutoTuner(edge_hw, budget=15, strategy="random", seed=0).tune("mas", workload)
        assert tuning.objective_evaluations is not None
        assert 1 <= tuning.objective_evaluations <= tuning.num_evaluations

    def test_mcts_ga_history_contains_both_phases(self, edge_hw, workload):
        tuning = AutoTuner(edge_hw, strategy="mcts+ga", budget=30).tune("mas", workload)
        phases = {rec.phase for rec in tuning.history.records}
        assert "mcts" in phases and "ga" in phases
