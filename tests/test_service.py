"""Tests for the result-store fleet service (:mod:`repro.service`) and its
client-side companions: the HTTP endpoints, ETag-based optimistic
concurrency under concurrent clients, service metrics, the shared
retry-with-backoff helper, and the ``serve`` CLI wiring.

The backend *contract* of :class:`~repro.store.http.HttpStore` is covered by
the parametrized matrix in ``tests/test_store.py``; this file covers what is
specific to the service itself.
"""

from __future__ import annotations

import http.client
import json
import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cli import build_parser
from repro.service import KeyedLocks, ServiceMetrics, running_server, server_url
from repro.service.server import API_PREFIX, DEFAULT_PORT, PROMETHEUS_CONTENT_TYPE
from repro.store import (
    EvictionPolicy,
    HttpStore,
    JsonDirStore,
    RetryPolicy,
    SqliteStore,
    StoreConflictError,
    TransientServiceError,
    call_with_retry,
    make_payload,
)
from repro.store.sqlite import is_sqlite_busy


def payload_for(key: str, value: int = 0) -> dict:
    return make_payload(
        key,
        {
            "scheduler": "mas",
            "workload": f"wl-{value}",
            "strategy": "mcts+ga",
            "budget": value,
        },
    )


@pytest.fixture
def server(tmp_path):
    """A live service over a fresh SQLite store; yields the server object."""
    with running_server(SqliteStore(tmp_path / "served.db")) as srv:
        yield srv


@pytest.fixture
def client(server):
    store = HttpStore(server_url(server))
    yield store
    store.close()


# Backwards-friendly local alias (the shared helper does the work).
url_of = server_url


@contextmanager
def flaky_server(handler_cls):
    """A bare ThreadingHTTPServer around a custom (failure-injecting) handler."""
    srv = ThreadingHTTPServer(("127.0.0.1", 0), handler_cls)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}"
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def raw_request(server, method: str, path: str, body: dict | None = None,
                headers: dict | None = None):
    """One plain-HTTP request (no HttpStore conveniences, no retries)."""
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        data = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=data, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw) if raw else None
        return response.status, payload, response.getheader("ETag")
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# Endpoints
# ---------------------------------------------------------------------- #
class TestEndpoints:
    def test_healthz_reports_backend_and_store(self, server):
        status, payload, _ = raw_request(server, "GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["backend"] == "sqlite"
        assert payload["store"].startswith("sqlite:")
        # operational identity: version, age and pid of the serving process
        assert payload["version"]
        assert payload["uptime_seconds"] >= 0
        assert payload["pid"] > 0

    def test_unknown_endpoint_is_404_with_json_error(self, server):
        status, payload, _ = raw_request(server, "GET", "/api/v1/nonsense")
        assert status == 404 and "error" in payload

    def test_unmatched_paths_share_one_metrics_label(self, server, client):
        """Junk traffic must not grow the per-endpoint table unboundedly."""
        for i in range(5):
            raw_request(server, "GET", f"/scanner/probe-{i}")
        requests = client.metrics()["requests"]
        assert requests["GET <unmatched>"]["count"] == 5
        assert not any("scanner" in label for label in requests)

    def test_bad_json_body_is_400(self, server):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/api/v1/lookup", body=b"definitely-not-json",
                headers={"Content-Length": "19"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            conn.close()

    def test_unknown_entry_filter_is_400(self, server, client):
        client.put("a", payload_for("a"))
        status, payload, _ = raw_request(
            server, "GET", "/api/v1/entries?flavour=vanilla"
        )
        assert status == 400 and "flavour" in payload["error"]

    def test_lookup_endpoint_is_one_round_trip_with_status(self, server, client):
        client.write("old", {"schema": 2, "key": "old", "tuning": {"budget": 1}})
        status, payload, etag = raw_request(
            server, "POST", "/api/v1/lookup", body={"key": "old"}
        )
        assert status == 200
        assert payload["status"] == "upgraded"  # normalized server-side...
        assert payload["payload"]["schema"] >= 3
        assert etag  # ... and version-bumped in the same trip
        # the write-back persisted: second lookup is a plain hit
        _, second, _ = raw_request(server, "POST", "/api/v1/lookup", body={"key": "old"})
        assert second["status"] == "hit"

    def test_batch_get_and_put(self, server, client):
        entries = {f"k{i}": payload_for(f"k{i}", i) for i in range(4)}
        status, payload, _ = raw_request(
            server, "POST", "/api/v1/batch/put", body={"entries": entries}
        )
        assert status == 200 and payload["stored"] == 4
        status, payload, _ = raw_request(
            server, "POST", "/api/v1/batch/get", body={"keys": ["k1", "k3", "nope"]}
        )
        assert status == 200
        assert payload["entries"]["k1"]["meta"]["budget"] == 1
        assert payload["entries"]["nope"] is None
        # the client-side batch API mirrors it
        found = client.read_many(["k0", "k2", "missing"])
        assert found["k0"]["meta"]["budget"] == 0
        assert found["missing"] is None

    def test_evict_without_policy_uses_the_services_caps(self, tmp_path):
        """HttpStore.evict(None) with an unbounded client policy delegates to
        the store policy the service was launched with."""
        backend = SqliteStore(
            tmp_path / "capped.db", policy=EvictionPolicy(max_entries=2)
        )
        with running_server(backend) as srv:
            store = HttpStore(server_url(srv))
            for i in range(4):  # raw writes bypass put()'s enforcement
                store.write(f"k{i}", payload_for(f"k{i}", i))
                store.touch(f"k{i}")
            evicted = store.evict()  # no caps anywhere client-side
            assert evicted == ["k0", "k1"]
            assert store.evict(EvictionPolicy()) == []  # explicit unbounded: no-op
            store.close()

    def test_keep_alive_survives_every_post_on_one_connection(self, server, client):
        """Every endpoint consumes its request body — including /clear, which
        takes none as input — so one keep-alive connection serves a whole
        session (regression: '{}' left in the stream desynced the next
        request into a 501)."""
        client.put("a", payload_for("a"))
        assert client.clear() == 1
        # same HttpStore connection, conditional write right after clear():
        # conditional requests never retry, so a desynced stream would fail
        etag = client.write("b", payload_for("b"))
        assert client.write("b", payload_for("b", 2), if_match=etag)
        assert client.get("b")["meta"]["budget"] == 2

    def test_wildcard_bind_prints_a_reachable_url(self, tmp_path):
        import socket

        from repro.service import make_server, server_url

        srv = make_server(SqliteStore(tmp_path / "w.db"), host="0.0.0.0", port=0)
        try:
            url = server_url(srv)
            assert "0.0.0.0" not in url
            assert socket.gethostname() in url
        finally:
            srv.server_close()

    def test_keep_alive_survives_a_404_with_body(self, server):
        """An unmatched POST's body is drained, so the same keep-alive
        connection serves the next request instead of desyncing."""
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/api/v1/renamed-endpoint",
                body=json.dumps({"key": "x" * 256}).encode(),
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            conn.request("GET", "/healthz")  # same socket, next request
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["ok"] is True
        finally:
            conn.close()

    def test_proxy_path_prefix_is_sent_on_every_request(self):
        """An http://host/prefix URI prepends the prefix to request paths."""
        seen: list[str] = []

        class Recorder(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self):
                seen.append(self.path)
                data = json.dumps({"ok": True, "backend": "x", "store": "x"}).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args):
                pass

        with flaky_server(Recorder) as url:
            store = HttpStore(f"{url}/mas")
            assert store.ping()["ok"] is True
            store.read("some-key")
            store.close()
        assert seen[0] == "/mas/healthz"
        assert seen[1] == "/mas/api/v1/entry/some-key"

    def test_client_caps_cannot_loosen_the_services_policy(self, tmp_path):
        """A client shipping looser caps must not grow a capped store past
        the policy the service was launched with."""
        backend = SqliteStore(
            tmp_path / "capped.db", policy=EvictionPolicy(max_entries=2)
        )
        with running_server(backend) as srv:
            loose = HttpStore(
                server_url(srv), policy=EvictionPolicy(max_entries=1000)
            )
            for i in range(5):  # put() ships the loose caps with every write
                loose.put(f"k{i}", payload_for(f"k{i}", i))
                loose.touch(f"k{i}")
            assert sorted(loose.keys()) == ["k3", "k4"]  # server cap held
            # a *tighter* client policy still tightens further
            loose.put("fresh", payload_for("fresh"))
            tight = HttpStore(server_url(srv), policy=EvictionPolicy(max_entries=1))
            tight.put("last", payload_for("last"))
            assert tight.keys() == ["last"]
            loose.close()
            tight.close()

    def test_server_side_eviction_under_put(self, server, client):
        """A put shipping caps evicts LRU entries atomically, server-side."""
        for i in range(5):
            client.put(f"k{i}", payload_for(f"k{i}", i))
            client.touch(f"k{i}")
        status, payload, _ = raw_request(
            server,
            "POST",
            "/api/v1/put",
            body={"key": "fresh", "payload": payload_for("fresh"), "max_entries": 3},
        )
        assert status == 200
        assert len(payload["evicted"]) == 3  # 6 entries down to 3, LRU first
        assert set(payload["evicted"]) == {"k0", "k1", "k2"}
        assert sorted(client.keys()) == ["fresh", "k3", "k4"]


# ---------------------------------------------------------------------- #
# ETags and optimistic concurrency
# ---------------------------------------------------------------------- #
class TestEtagConcurrency:
    def test_conditional_delete_loses_to_a_touch(self, server, client):
        """Cross-host eviction must not delete an entry a client refreshed."""
        client.put("hot", payload_for("hot"))
        evictor = HttpStore(url_of(server))  # a second, independent client
        _, planned_etag = evictor.read_with_etag("hot")
        assert planned_etag is not None

        client.touch("hot")  # another host refreshes the entry meanwhile

        with pytest.raises(StoreConflictError):
            evictor.delete("hot", if_match=planned_etag)
        assert "hot" in client.keys()  # the entry survived its stale eviction
        # with the *current* etag the delete goes through
        _, fresh = evictor.read_with_etag("hot")
        assert evictor.delete("hot", if_match=fresh)
        evictor.close()

    def test_conditional_write_conflicts(self, server, client):
        etag = client.write("k", payload_for("k", 1))
        client.write("k", payload_for("k", 2))  # unconditional overwrite
        with pytest.raises(StoreConflictError):
            client.write("k", payload_for("k", 3), if_match=etag)
        assert client.get("k")["meta"]["budget"] == 2

    def test_lookup_hit_moves_the_etag(self, server, client):
        """A served hit refreshes LRU state, so its version must move too."""
        client.put("k", payload_for("k"))
        _, before = client.read_with_etag("k")
        assert client.lookup("k")[1] == "hit"
        _, after = client.read_with_etag("k")
        assert before != after

    def test_412_response_carries_current_etag(self, server, client):
        """The conflict response names the winning version both as an ETag
        header and in the body, so losers can retry without a refetch."""
        stale = client.write("k", payload_for("k", 1))
        client.write("k", payload_for("k", 2))
        _, current = client.read_with_etag("k")
        status, body, etag = raw_request(
            server,
            "PUT",
            f"{API_PREFIX}/entry/k",
            body=payload_for("k", 3),
            headers={"If-Match": stale},
        )
        assert status == 412
        assert etag == current
        assert body["etag"] == current

    def test_conflict_recovery_uses_surfaced_etag_without_refetch(
        self, server, client
    ):
        stale = client.write("k", payload_for("k", 1))
        client.write("k", payload_for("k", 2))

        def get_requests() -> int:
            requests = server.service.metrics.snapshot()["requests"]
            return sum(
                stats["count"]
                for label, stats in requests.items()
                if label.startswith("GET ")
            )

        gets_before = get_requests()
        with pytest.raises(StoreConflictError) as excinfo:
            client.write("k", payload_for("k", 3), if_match=stale)
        current = excinfo.value.current_etag
        assert current is not None
        # one retry with the surfaced etag wins — no GET round trip needed
        fresh = client.write("k", payload_for("k", 3), if_match=current)
        assert fresh != current
        assert get_requests() == gets_before
        assert client.get("k")["meta"]["budget"] == 3

    def test_concurrent_clients_never_lose_fresh_entries(self, server):
        """Four clients hammer puts under a shared cap: the cap holds and
        every client's most recent entry survives the crossfire."""
        cap = 8
        rounds = 6

        def hammer(worker: int) -> str:
            store = HttpStore(
                url_of(server), policy=EvictionPolicy(max_entries=cap)
            )
            last = ""
            for i in range(rounds):
                last = f"w{worker}-r{i}"
                store.put(last, payload_for(last, i))
            store.close()
            return last

        with ThreadPoolExecutor(max_workers=4) as pool:
            finals = list(pool.map(hammer, range(4)))

        survivor_check = HttpStore(url_of(server))
        keys = set(survivor_check.keys())
        assert len(keys) == cap  # the cap held exactly under concurrency
        for final in finals:  # the 4 freshest entries all survived
            assert final in keys
            payload, status = survivor_check.lookup(final)
            assert status == "hit" and payload is not None
        survivor_check.close()


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_metrics_track_hits_misses_evictions_and_latency(self, server, client):
        client.lookup("missing")
        client.put("a", payload_for("a"))
        client.lookup("a")
        client.write("stale", {"schema": 99, "key": "stale", "tuning": {}})
        client.lookup("stale")
        client.evict(EvictionPolicy(max_entries=1))

        metrics = client.metrics()
        assert metrics["hits"] == 1
        assert metrics["misses"] == 1
        assert metrics["stale"] == 1
        assert metrics["puts"] >= 2
        assert metrics["evictions"] == 1
        assert metrics["bytes_stored"] > 0 and metrics["bytes_served"] > 0

        lookups = metrics["requests"]["POST /lookup"]
        assert lookups["count"] == 3
        assert lookups["errors"] == 0
        assert lookups["max_ms"] >= lookups["mean_ms"] > 0
        # latency quantiles from the fixed-bucket histogram, ordered
        assert 0 < lookups["p50_ms"] <= lookups["p95_ms"] <= lookups["p99_ms"]
        assert lookups["p99_ms"] <= lookups["max_ms"]
        assert metrics["uptime_s"] >= 0

    def test_conflicts_are_counted(self, server, client):
        etag = client.write("k", payload_for("k"))
        client.touch("k")
        with pytest.raises(StoreConflictError):
            client.delete("k", if_match=etag)
        assert client.metrics()["conflicts"] == 1

    def test_record_lookup_rejects_unknown_status(self):
        """A new lookup status must be wired into the metrics explicitly —
        silently folding it into `misses` once skewed every hit-rate chart."""
        metrics = ServiceMetrics()
        for status in ("hit", "upgraded", "stale", "miss"):
            metrics.record_lookup(status)
        snapshot = metrics.snapshot()
        assert snapshot["hits"] == snapshot["misses"] == 1
        with pytest.raises(ValueError, match="unknown lookup status"):
            metrics.record_lookup("hot")
        assert metrics.snapshot()["misses"] == 1  # nothing was miscounted

    def test_bytes_stored_counts_payload_not_request_envelope(self, server):
        """`POST /put` accounting must reflect what the store keeps (the
        compact payload), not however many bytes the request body happened
        to occupy on the wire."""
        payload = payload_for("padded")
        body = json.dumps({"key": "padded", "payload": payload}, indent=8)
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("POST", f"{API_PREFIX}/put", body=body.encode())
            assert conn.getresponse().status == 200
        finally:
            conn.close()
        stored = server.service.metrics.snapshot()["bytes_stored"]
        compact = len(json.dumps(payload, separators=(",", ":")).encode())
        assert stored == compact
        assert len(body) > compact  # the padded envelope would have lied

    def test_batch_put_bytes_stored_sums_payloads(self, server, client):
        entries = {f"b{i}": payload_for(f"b{i}", i) for i in range(3)}
        client.put_many(entries)
        stored = server.service.metrics.snapshot()["bytes_stored"]
        compact = sum(
            len(json.dumps(p, separators=(",", ":")).encode())
            for p in entries.values()
        )
        assert stored == compact

    def test_prometheus_exposition_is_content_negotiated(self, server, client):
        client.put("k", payload_for("k"))
        client.lookup("k")
        client.lookup("nope")

        status, body, _ = raw_request(server, "GET", "/metrics")
        assert status == 200 and isinstance(body, dict)  # default stays JSON

        host, port = server.server_address[:2]
        for path, headers in (
            ("/metrics", {"Accept": "text/plain"}),
            ("/metrics?format=prometheus", {}),
        ):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", path, headers=headers)
                response = conn.getresponse()
                text = response.read().decode()
                assert response.status == 200
                assert response.getheader("Content-Type") == PROMETHEUS_CONTENT_TYPE
            finally:
                conn.close()
            assert "# TYPE mas_store_hits_total counter" in text
            assert "mas_store_hits_total 1" in text
            assert "mas_store_misses_total 1" in text
            assert "mas_store_uptime_seconds" in text
            assert 'mas_store_requests_total{endpoint="POST /lookup"} 2' in text
            # latency histogram, ms observations rendered in seconds
            assert "# TYPE mas_store_request_seconds histogram" in text
            assert (
                'mas_store_request_seconds_bucket{endpoint="POST /lookup",le="+Inf"} 2'
                in text
            )
            assert 'mas_store_request_seconds_count{endpoint="POST /lookup"} 2' in text


# ---------------------------------------------------------------------- #
# Striped per-key locking
# ---------------------------------------------------------------------- #
def _locked_in_thread(acquire, timeout: float = 2.0) -> bool:
    """True when ``acquire`` (a contextmanager factory) succeeds in a fresh
    thread within ``timeout`` — i.e. the lock is currently obtainable."""
    acquired = threading.Event()
    release = threading.Event()

    def worker():
        with acquire():
            acquired.set()
            release.wait(timeout)

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    ok = acquired.wait(timeout)
    release.set()
    thread.join(timeout)
    return ok


class TestKeyedLocks:
    def test_width_validation_and_pickle(self):
        import pickle

        assert KeyedLocks(8).stripe_count == 8
        with pytest.raises(ValueError):
            KeyedLocks(0)
        # locks cannot cross process boundaries; a clone arrives fresh
        assert pickle.loads(pickle.dumps(KeyedLocks(8))).stripe_count == 8

    def test_distinct_stripes_do_not_block_each_other(self):
        import zlib

        locks = KeyedLocks(64)
        stripe_of = lambda k: zlib.crc32(k.encode()) % 64
        other = next(str(i) for i in range(100) if stripe_of(str(i)) != stripe_of("a"))
        entered, release = threading.Event(), threading.Event()

        def holder():
            with locks.key("a"):
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert entered.wait(2)
        try:
            # a different stripe is immediately obtainable...
            assert _locked_in_thread(lambda: locks.key(other))
            # ...while the held key's stripe and the store gate are not
            assert not _locked_in_thread(lambda: locks.key("a"), timeout=0.3)
            assert not _locked_in_thread(locks.store, timeout=0.3)
        finally:
            release.set()
            thread.join(5)
        assert _locked_in_thread(lambda: locks.key("a"))
        assert _locked_in_thread(locks.store)

    def test_store_gate_excludes_every_key(self):
        locks = KeyedLocks(64)
        entered, release = threading.Event(), threading.Event()

        def holder():
            with locks.store():
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        assert entered.wait(2)
        try:
            assert not _locked_in_thread(lambda: locks.key("a"), timeout=0.3)
            assert not _locked_in_thread(lambda: locks.keys(["a", "b"]), timeout=0.3)
        finally:
            release.set()
            thread.join(5)
        assert _locked_in_thread(lambda: locks.key("a"))

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once an exclusive caller waits, fresh shared
        entries queue behind it — a steady read stream cannot starve evict."""
        locks = KeyedLocks(64)
        entered, release = threading.Event(), threading.Event()

        def reader():
            with locks.key("a"):
                entered.set()
                release.wait(5)

        holder = threading.Thread(target=reader, daemon=True)
        holder.start()
        assert entered.wait(2)

        writer_done = threading.Event()

        def writer():
            with locks.store():
                writer_done.set()

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        deadline = 2.0
        while locks._exclusive_waiting == 0 and deadline > 0:
            time_step = 0.01
            deadline -= time_step
            threading.Event().wait(time_step)
        assert locks._exclusive_waiting == 1

        # a brand-new reader on a *different* key must now queue too
        assert not _locked_in_thread(lambda: locks.key("b"), timeout=0.3)
        release.set()
        holder.join(5)
        assert writer_done.wait(2)
        writer_thread.join(5)
        assert _locked_in_thread(lambda: locks.key("b"))

    def test_overlapping_batches_never_deadlock(self):
        locks = KeyedLocks(4)  # few stripes: batches always collide
        rounds = 200
        errors: list[BaseException] = []

        def spin(keys):
            try:
                for _ in range(rounds):
                    with locks.keys(keys):
                        pass
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=spin, args=(order,), daemon=True)
            for order in (["a", "b", "c"], ["c", "b", "a"], ["b", "a", "c"])
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert not errors
        assert all(not thread.is_alive() for thread in threads)


# ---------------------------------------------------------------------- #
# The shared retry helper
# ---------------------------------------------------------------------- #
class TestRetryHelper:
    def test_returns_first_success_without_sleeping(self):
        sleeps: list[float] = []
        assert call_with_retry(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_backoff_schedule_and_eventual_success(self):
        sleeps: list[float] = []
        attempts = iter([True, True, False])  # fail, fail, succeed

        def flaky():
            if next(attempts):
                raise TimeoutError("transient")
            return "done"

        policy = RetryPolicy(attempts=5, base_delay=0.1, backoff=2.0, max_delay=10.0)
        assert call_with_retry(flaky, policy=policy, sleep=sleeps.append) == "done"
        assert sleeps == [0.1, 0.2]  # exponential, one sleep per failure

    def test_gives_up_after_attempts_and_reraises_last(self):
        sleeps: list[float] = []

        def always_fails():
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError, match="still down"):
            call_with_retry(
                always_fails, policy=RetryPolicy(attempts=3, base_delay=0.01),
                sleep=sleeps.append,
            )
        assert len(sleeps) == 2  # attempts-1 sleeps

    def test_non_transient_errors_escape_immediately(self):
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            call_with_retry(
                fails,
                should_retry=lambda exc: isinstance(exc, TimeoutError),
                sleep=lambda s: None,
            )
        assert len(calls) == 1

    def test_delay_caps_at_max(self):
        policy = RetryPolicy(attempts=10, base_delay=1.0, backoff=10.0, max_delay=3.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 3.0  # 10.0 capped
        assert policy.delay(5) == 3.0

    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class _FlakyConnection:
    """Wraps a sqlite connection; the first ``failures`` statements raise BUSY."""

    def __init__(self, real: sqlite3.Connection, failures: int) -> None:
        self._real = real
        self.failures = failures
        self.attempts = 0

    def execute(self, *args, **kwargs):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise sqlite3.OperationalError("database is locked")
        return self._real.execute(*args, **kwargs)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return self._real.__exit__(*exc_info)


class TestSqliteBusyRetry:
    def test_busy_classifier(self):
        assert is_sqlite_busy(sqlite3.OperationalError("database is locked"))
        assert is_sqlite_busy(sqlite3.OperationalError("database is busy"))
        assert not is_sqlite_busy(
            sqlite3.OperationalError("attempt to write a readonly database")
        )
        assert not is_sqlite_busy(ValueError("database is locked"))  # wrong type

    def test_write_rides_out_lock_contention(self, tmp_path):
        store = SqliteStore(
            tmp_path / "c.db", retry=RetryPolicy(attempts=4, base_delay=0.001)
        )
        flaky = _FlakyConnection(store._connect(), failures=2)
        store._conn = flaky  # type: ignore[assignment]
        store.write("k", payload_for("k", 7))
        assert flaky.attempts == 3  # two BUSY failures, then success
        store._conn = flaky._real
        assert store.get("k")["meta"]["budget"] == 7
        store.close()

    def test_persistent_lock_error_escapes(self, tmp_path):
        store = SqliteStore(
            tmp_path / "c.db", retry=RetryPolicy(attempts=2, base_delay=0.001)
        )
        flaky = _FlakyConnection(store._connect(), failures=99)
        store._conn = flaky  # type: ignore[assignment]
        with pytest.raises(sqlite3.OperationalError):
            store.write("k", payload_for("k"))
        store._conn = flaky._real
        store.close()


class _FlakyHandler(BaseHTTPRequestHandler):
    """Responds 503 to the first N requests, then 200 with a fixed body."""

    protocol_version = "HTTP/1.1"
    remaining_failures = 0
    body = b"{}"

    def do_GET(self):
        cls = type(self)
        if cls.remaining_failures > 0:
            cls.remaining_failures -= 1
            data = b'{"error": "warming up"}'
            self.send_response(503)
        else:
            data = cls.body
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *args):  # noqa: D102
        pass


class TestHttpRetry:
    def test_transient_5xx_retries_until_success(self):
        class Handler(_FlakyHandler):
            remaining_failures = 2
            body = json.dumps({"ok": True, "backend": "x", "store": "x"}).encode()

        with flaky_server(Handler) as url:
            store = HttpStore(url, retry=RetryPolicy(attempts=5, base_delay=0.001))
            assert store.ping()["ok"] is True  # two 503s absorbed
            assert Handler.remaining_failures == 0
            store.close()

    def test_conditional_requests_are_never_replayed(self):
        """A request carrying If-Match is sent exactly once: its outcome is
        unknowable after a transport failure, so a replay could turn a
        committed conditional write into a spurious conflict."""

        class Handler(_FlakyHandler):
            remaining_failures = 1

            def do_PUT(self):
                self.do_GET()

        with flaky_server(Handler) as url:
            store = HttpStore(url, retry=RetryPolicy(attempts=5, base_delay=0.001))
            with pytest.raises(TransientServiceError):  # one 503, no retry
                store.write("k", payload_for("k"), if_match='"1"')
            assert Handler.remaining_failures == 0  # a retry would have hit 200
            store.close()

    def test_persistent_5xx_raises_transient_error(self):
        class Handler(_FlakyHandler):
            remaining_failures = 10**6

        with flaky_server(Handler) as url:
            store = HttpStore(url, retry=RetryPolicy(attempts=3, base_delay=0.001))
            with pytest.raises(TransientServiceError):
                store.ping()
            store.close()


# ---------------------------------------------------------------------- #
# CLI wiring
# ---------------------------------------------------------------------- #
class TestServeCli:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "sqlite:///tmp/x.db", "--host", "0.0.0.0", "--port", "9999"]
        )
        assert args.command == "serve"
        assert args.store == "sqlite:///tmp/x.db"
        assert args.host == "0.0.0.0" and args.port == 9999
        defaults = build_parser().parse_args(["serve"])
        assert defaults.store is None and defaults.port == DEFAULT_PORT

    def test_serve_refuses_to_front_an_http_store(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="refusing"):
            main(["serve", "http://127.0.0.1:8787"])

    def test_serve_requires_a_store(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("MAS_CACHE_URI", raising=False)
        monkeypatch.delenv("MAS_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="no result store"):
            main(["serve"])

    def test_cache_cli_works_against_a_served_store(self, server, client, capsys):
        from repro.cli import main

        client.put("a", payload_for("a", 1))
        assert main(["cache", "stats", "--cache", url_of(server)]) == 0
        out = capsys.readouterr().out
        assert "entries : 1" in out and "backend : http" in out
        assert main(["cache", "ls", "--cache", url_of(server)]) == 0
        assert "mas" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache", url_of(server)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
