"""Unit tests for :mod:`repro.sim` (task graphs, scheduling engine, traces)."""

from __future__ import annotations

import pytest

from repro.hardware.energy import EnergyModel
from repro.sim.engine import critical_path_cycles, simulate_graph
from repro.sim.executor import simulate
from repro.sim.tasks import TaskGraph, TaskKind, dma_resource, mac_resource, vec_resource
from repro.sim.trace import Trace


def build_diamond() -> TaskGraph:
    """load -> (matmul, softmax in parallel on different units) -> store."""
    g = TaskGraph(name="diamond")
    load = g.add("load", TaskKind.LOAD, dma_resource(), 10, dram_bytes_read=80)
    mm = g.add("mm", TaskKind.MATMUL, mac_resource(0), 100, deps=[load], mac_ops=1000)
    sm = g.add("sm", TaskKind.SOFTMAX, vec_resource(0), 60, deps=[load], vec_ops=500)
    g.add("store", TaskKind.STORE, dma_resource(), 10, deps=[mm, sm], dram_bytes_written=80)
    return g


class TestTaskGraph:
    def test_add_assigns_ids_and_deps(self):
        g = build_diamond()
        assert len(g) == 4
        assert [t.tid for t in g] == [0, 1, 2, 3]
        assert g[3].deps == (1, 2)

    def test_add_accepts_tasks_or_ids(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.LOAD, dma_resource(), 1)
        b = g.add("b", TaskKind.MATMUL, mac_resource(0), 1, deps=[a])
        c = g.add("c", TaskKind.STORE, dma_resource(), 1, deps=[b.tid])
        assert b.deps == (0,) and c.deps == (1,)

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("bad", TaskKind.LOAD, dma_resource(), 1, deps=[5])

    def test_negative_cycles_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("bad", TaskKind.LOAD, dma_resource(), -1)

    def test_negative_counters_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("bad", TaskKind.LOAD, dma_resource(), 1, dram_bytes_read=-5)

    def test_barrier_is_zero_cost(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.LOAD, dma_resource(), 5)
        barrier = g.add_barrier("sync", deps=[a])
        assert barrier.cycles == 0 and barrier.resource == ""

    def test_resources_and_filters(self):
        g = build_diamond()
        assert g.resources() == [dma_resource(), mac_resource(0), vec_resource(0)]
        assert len(g.tasks_on(dma_resource())) == 2
        assert len(g.by_kind(TaskKind.MATMUL)) == 1

    def test_lower_bound(self):
        g = build_diamond()
        assert g.total_cycles_lower_bound() == 100  # the MAC is the busiest resource


class TestEngine:
    def test_dependencies_and_resource_serialization(self):
        g = build_diamond()
        trace = simulate_graph(g)
        recs = {r.task.name: r for r in trace.records}
        assert recs["load"].start == 0 and recs["load"].finish == 10
        # Both compute tasks start after the load, on different units, in parallel.
        assert recs["mm"].start == 10 and recs["sm"].start == 10
        # The store waits for the slower of the two.
        assert recs["store"].start == 110
        assert trace.total_cycles == 120

    def test_same_resource_serializes_in_program_order(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.MATMUL, mac_resource(0), 10)
        b = g.add("b", TaskKind.MATMUL, mac_resource(0), 10)
        trace = simulate_graph(g)
        recs = {r.task.name: r for r in trace.records}
        assert recs["a"].start == 0 and recs["b"].start == 10

    def test_inorder_unit_respects_program_order_even_if_later_task_ready_first(self):
        g = TaskGraph()
        slow_load = g.add("slow_load", TaskKind.LOAD, dma_resource(), 50)
        first = g.add("first", TaskKind.MATMUL, mac_resource(0), 10, deps=[slow_load])
        second = g.add("second", TaskKind.MATMUL, mac_resource(0), 10)  # ready at t=0
        trace = simulate_graph(g)
        recs = {r.task.name: r for r in trace.records}
        # "second" was emitted after "first" on the same MAC, so it must not jump ahead.
        assert recs["first"].start == 50
        assert recs["second"].start == 60

    def test_dma_is_served_out_of_order(self):
        g = TaskGraph()
        mm = g.add("mm", TaskKind.MATMUL, mac_resource(0), 100)
        g.add("store", TaskKind.STORE, dma_resource(), 10, deps=[mm])
        g.add("load", TaskKind.LOAD, dma_resource(), 10)  # independent, enqueued later
        trace = simulate_graph(g)
        recs = {r.task.name: r for r in trace.records}
        # The store is not ready until t=100; the load must not be blocked behind it.
        assert recs["load"].start == 0
        assert recs["store"].start == 100
        assert trace.total_cycles == 110

    def test_barrier_completes_at_dependency_finish(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.MATMUL, mac_resource(0), 25)
        barrier = g.add_barrier("sync", deps=[a])
        b = g.add("b", TaskKind.SOFTMAX, vec_resource(0), 5, deps=[barrier])
        trace = simulate_graph(g)
        recs = {r.task.name: r for r in trace.records}
        assert recs["sync"].start == 25 and recs["sync"].finish == 25
        assert recs["b"].start == 25

    def test_empty_graph(self):
        assert simulate_graph(TaskGraph()).total_cycles == 0

    def test_critical_path_ignores_resources(self):
        g = TaskGraph()
        a = g.add("a", TaskKind.MATMUL, mac_resource(0), 10)
        b = g.add("b", TaskKind.MATMUL, mac_resource(0), 10)
        c = g.add("c", TaskKind.MATMUL, mac_resource(0), 10, deps=[a, b])
        assert critical_path_cycles(g) == 20       # a and b in parallel on infinite units
        assert simulate_graph(g).total_cycles == 30  # but they share one MAC

    def test_makespan_never_beats_critical_path_or_busiest_resource(self):
        g = build_diamond()
        trace = simulate_graph(g)
        assert trace.total_cycles >= critical_path_cycles(g)
        assert trace.total_cycles >= g.total_cycles_lower_bound()


class TestTrace:
    def test_busy_cycles_and_utilization(self):
        trace = simulate_graph(build_diamond())
        assert trace.busy_cycles(mac_resource(0)) == 100
        assert trace.busy_cycles(dma_resource()) == 20
        assert trace.utilization(mac_resource(0)) == pytest.approx(100 / 120)
        assert Trace().utilization("anything") == 0.0

    def test_counters_aggregate_all_tasks(self):
        trace = simulate_graph(build_diamond())
        counters = trace.counters()
        assert counters.dram_bytes_read == 80
        assert counters.dram_bytes_written == 80
        assert counters.mac_ops == 1000 and counters.vec_ops == 500
        assert counters.total_cycles == trace.total_cycles

    def test_overlap_cycles(self):
        trace = simulate_graph(build_diamond())
        # mm spans [10, 110), sm spans [10, 70) -> 60 cycles of overlap.
        assert trace.overlap_cycles(mac_resource(0), vec_resource(0)) == 60
        assert trace.overlap_cycles(mac_resource(0), "unused") == 0

    def test_count_kind(self):
        trace = simulate_graph(build_diamond())
        assert trace.count_kind(TaskKind.LOAD) == 1
        assert trace.count_kind(TaskKind.BARRIER) == 0


class TestExecutorFacade:
    def test_simulate_produces_result_with_energy(self, edge_hw):
        graph = build_diamond()
        result = simulate(graph, edge_hw, scheduler="diamond", workload_name="unit")
        assert result.cycles == 120
        assert result.scheduler == "diamond"
        assert result.hardware_name == edge_hw.name
        expected = EnergyModel(edge_hw).compute(result.counters).total_pj
        assert result.energy_pj == pytest.approx(expected)
        assert result.latency_seconds == pytest.approx(120 / edge_hw.frequency_hz)
        summary = result.summary()
        assert summary["cycles"] == 120 and summary["scheduler"] == "diamond"
