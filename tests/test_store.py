"""Tests for the pluggable result-store subsystem (:mod:`repro.store`).

Covers the backend contract for all three stores (JSON directory, SQLite,
and HTTP against a live in-process service), LRU eviction, URI parsing, the
v2 -> v3 entry-schema upgrade, store migration (round-trip, zero entry loss,
warm sweeps against migrated stores), and concurrent SQLite writers.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exec import ExperimentRunner, ParallelRunner, ResultCache
from repro.exec.cache import KEY_SCHEMA_VERSION, tuning_result_to_dict
from repro.search.autotuner import AutoTuner
from repro.service import running_server, server_url
from repro.store import (
    ENTRY_SCHEMA_VERSION,
    EntryInfo,
    EvictionPolicy,
    HttpStore,
    JsonDirStore,
    ShardedStore,
    SqliteStore,
    make_payload,
    migrate_store,
    normalize_payload,
    open_store,
    parse_duration,
    parse_size,
    plan_eviction,
)
from repro.workloads.attention import AttentionWorkload

FAST_NETWORKS = ["ViT-B/14", "ViT-B/16"]
FAST_METHODS = ["flat", "mas"]
BUDGET = 5


def payload_for(key: str, value: int = 0) -> dict:
    """A minimal but schema-valid entry payload."""
    return make_payload(
        key,
        {
            "scheduler": "mas",
            "workload": f"wl-{value}",
            "strategy": "mcts+ga",
            "budget": value,
        },
    )


@pytest.fixture
def store_server(tmp_path):
    """A live store service over a fresh SQLite backend (one per test)."""
    with running_server(SqliteStore(tmp_path / "served.db")) as server:
        yield server


@pytest.fixture(params=["jsondir", "sqlite", "http"])
def store(request, tmp_path):
    """One instance of each backend, same contract expected of all three.

    The HTTP instance talks to a real in-process service fronting a SQLite
    store, so every contract test exercises the full client/server path.
    """
    if request.param == "jsondir":
        yield JsonDirStore(tmp_path / "store")
    elif request.param == "sqlite":
        s = SqliteStore(tmp_path / "store.db")
        yield s
        s.close()
    else:
        with running_server(SqliteStore(tmp_path / "served.db")) as server:
            s = HttpStore(server_url(server))
            try:
                yield s
            finally:
                s.close()


# ---------------------------------------------------------------------- #
# Backend contract
# ---------------------------------------------------------------------- #
class TestStoreContract:
    def test_roundtrip_and_len(self, store):
        assert store.get("a") is None and len(store) == 0
        store.put("a", payload_for("a", 1))
        store.put("b", payload_for("b", 2))
        assert len(store) == 2
        assert "a" in store and "missing" not in store
        assert store.get("a")["meta"]["workload"] == "wl-1"
        assert sorted(store.keys()) == ["a", "b"]

    def test_overwrite_last_writer_wins(self, store):
        store.put("k", payload_for("k", 1))
        store.put("k", payload_for("k", 2))
        assert len(store) == 1
        assert store.get("k")["meta"]["budget"] == 2

    def test_delete_and_clear(self, store):
        store.put("a", payload_for("a"))
        store.put("b", payload_for("b"))
        assert store.delete("a") and not store.delete("a")
        assert store.clear() == 1
        assert len(store) == 0

    def test_entries_metadata(self, store):
        store.put("a", payload_for("a", 3))
        (info,) = store.entries()
        assert isinstance(info, EntryInfo)
        assert info.key == "a"
        assert info.schema == ENTRY_SCHEMA_VERSION
        assert info.scheduler == "mas"
        assert info.workload == "wl-3"
        assert info.strategy == "mcts+ga"
        assert info.size_bytes > 0

    def test_stats(self, store):
        store.put("a", payload_for("a"))
        store.put("b", payload_for("b"))
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.stale_entries == 0
        assert stats.backend == store.backend
        assert stats.location == store.uri()

    def test_lookup_statuses(self, store):
        assert store.lookup("nope") == (None, "miss")
        store.put("k", payload_for("k"))
        payload, status = store.lookup("k")
        assert status == "hit" and payload["schema"] == ENTRY_SCHEMA_VERSION

    def test_old_schema_entry_upgrades_in_place(self, store):
        """A v2-layout entry is converted on read (migration path), not dropped."""
        v2 = {"schema": 2, "key": "k", "tuning": payload_for("k", 7)["tuning"]}
        store.write("k", v2)  # raw write: bypass put()'s normalization
        payload, status = store.lookup("k")
        assert status == "upgraded"
        assert payload["schema"] == ENTRY_SCHEMA_VERSION
        assert payload["meta"]["workload"] == "wl-7"
        # the upgrade is persisted: the second read is an ordinary hit
        assert store.lookup("k")[1] == "hit"

    def test_future_schema_entry_is_stale_and_surfaced(self, store):
        store.write("k", {"schema": 99, "key": "k", "tuning": {}})
        assert store.lookup("k") == (None, "stale")
        assert "k" in store.keys()  # the entry is data, not garbage: kept
        assert store.stats().stale_entries == 1

    def test_entries_filterable_on_every_backend(self, store):
        store.put("a", payload_for("a", 1))
        store.write("odd", {"schema": 99, "key": "odd", "tuning": {}})
        assert {e.key for e in store.entries(scheduler="mas")} == {"a"}
        assert store.entries(workload="nope") == []
        assert store.entries(scheduler=None) == store.entries()  # None ignored
        with pytest.raises(ValueError):
            store.entries(flavour="vanilla")

    def test_tuningless_envelope_counts_stale_in_stats(self, store):
        """A current-schema envelope without a tuning block is stale for
        lookup() — stats must agree, not trust the raw schema number."""
        store.write("k", {"schema": ENTRY_SCHEMA_VERSION, "key": "k"})
        assert store.lookup("k") == (None, "stale")
        assert store.stats().stale_entries == 1
        (info,) = store.entries()
        assert info.schema is None

    def test_uri_roundtrips_through_open_store(self, store, tmp_path):
        store.put("k", payload_for("k", 5))
        reopened = open_store(store.uri())
        assert type(reopened) is type(store)
        assert reopened.get("k")["meta"]["budget"] == 5

    def test_uri_roundtrips_eviction_policy(self, store):
        """uri() carries the caps, so a reopened capped store stays capped."""
        location = getattr(store, "path", None) or getattr(store, "root", None) or store.base_url
        capped = type(store)(
            location,
            policy=EvictionPolicy(max_entries=7, max_bytes=2048),
        )
        assert "max_entries=7" in capped.uri() and "max_bytes=2048" in capped.uri()
        reopened = open_store(capped.uri())
        assert reopened.policy == capped.policy


# ---------------------------------------------------------------------- #
# Eviction
# ---------------------------------------------------------------------- #
def _info(key: str, size: int, used: float) -> EntryInfo:
    return EntryInfo(
        key=key, schema=3, scheduler=None, workload=None, strategy=None,
        suite=None, size_bytes=size, last_used=used,
    )


class TestEvictionPlanner:
    def test_unbounded_policy_evicts_nothing(self):
        entries = [_info("a", 100, 1.0), _info("b", 100, 2.0)]
        assert plan_eviction(entries, EvictionPolicy()) == []

    def test_max_entries_drops_lru_first(self):
        entries = [_info("new", 10, 3.0), _info("old", 10, 1.0), _info("mid", 10, 2.0)]
        assert plan_eviction(entries, EvictionPolicy(max_entries=2)) == ["old"]
        assert plan_eviction(entries, EvictionPolicy(max_entries=1)) == ["old", "mid"]
        assert plan_eviction(entries, EvictionPolicy(max_entries=0)) == ["old", "mid", "new"]

    def test_max_bytes_drops_lru_first(self):
        entries = [_info("a", 600, 1.0), _info("b", 600, 2.0), _info("c", 600, 3.0)]
        assert plan_eviction(entries, EvictionPolicy(max_bytes=1200)) == ["a"]
        assert plan_eviction(entries, EvictionPolicy(max_bytes=100)) == ["a", "b", "c"]

    def test_both_caps_compose(self):
        entries = [_info("a", 1000, 1.0), _info("b", 10, 2.0), _info("c", 10, 3.0)]
        # max_entries alone keeps b+c; max_bytes alone would evict only a.
        plan = plan_eviction(entries, EvictionPolicy(max_entries=2, max_bytes=15))
        assert plan == ["a", "b"]

    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError):
            EvictionPolicy(max_entries=-1)
        with pytest.raises(ValueError):
            EvictionPolicy(max_bytes=-5)

    def test_parse_size(self):
        assert parse_size(123) == 123
        assert parse_size("123") == 123
        assert parse_size("1k") == 1024
        assert parse_size("1KiB") == 1024
        assert parse_size("2MiB") == 2 * 1024**2
        assert parse_size("1.5G") == int(1.5 * 1024**3)
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_parse_size_binary_vs_decimal_units(self):
        """`kB`/`MB`/... are decimal (powers of 1000); bare letters and the
        IEC `KiB` family stay binary.  `1kb` must never silently mean 1024."""
        assert parse_size("1kb") == 1000
        assert parse_size("1KB") == 1000
        assert parse_size("1Kb") == 1000
        assert parse_size("2MB") == 2 * 1000**2
        assert parse_size("3GB") == 3 * 1000**3
        assert parse_size("1TB") == 1000**4
        assert parse_size("1K") == parse_size("1Ki") == parse_size("1KiB") == 1024
        assert parse_size("1TiB") == 1024**4
        with pytest.raises(ValueError, match="unknown size unit"):
            parse_size("1KiBB")
        with pytest.raises(ValueError, match="unknown size unit"):
            parse_size("1kbyte")

    def test_parse_size_boundaries(self):
        assert parse_size("0") == 0
        assert parse_size("0b") == 0
        assert parse_size(" 1.5GiB ") == int(1.5 * 1024**3)
        assert parse_size("1.5 GiB") == int(1.5 * 1024**3)  # embedded space
        assert parse_size("10 B") == 10
        with pytest.raises(ValueError):
            parse_size("")
        with pytest.raises(ValueError):
            parse_size("GiB")  # unit without a number
        with pytest.raises(ValueError):
            parse_size("-1k")  # sizes are magnitudes

    def test_parse_duration(self):
        assert parse_duration(90) == 90.0
        assert parse_duration("90") == 90.0
        assert parse_duration("30s") == 30.0
        assert parse_duration("5m") == parse_duration("5min") == 300.0
        assert parse_duration("2h") == 7200.0
        assert parse_duration("7d") == 7 * 86400.0
        assert parse_duration("1.5h") == 5400.0
        assert parse_duration("0") == 0.0
        with pytest.raises(ValueError, match="unknown duration unit"):
            parse_duration("10 fortnights")
        with pytest.raises(ValueError):
            parse_duration("-1h")

    def test_ttl_expires_by_age(self):
        entries = [_info("old", 10, 100.0), _info("fresh", 10, 990.0)]
        policy = EvictionPolicy(ttl_seconds=60)
        assert plan_eviction(entries, policy, now=1000.0) == ["old"]
        # at a horizon nothing has crossed, nothing goes
        assert plan_eviction(entries, policy, now=150.0) == []

    def test_ttl_composes_with_caps(self):
        entries = [
            _info("ancient", 10, 1.0),
            _info("old", 10, 2.0),
            _info("fresh", 10, 999.0),
        ]
        # TTL alone takes the two expired; max_entries=1 takes nothing extra.
        policy = EvictionPolicy(max_entries=1, ttl_seconds=100)
        assert plan_eviction(entries, policy, now=1000.0) == ["ancient", "old"]
        # caps keep evicting past the TTL horizon when still over budget
        policy = EvictionPolicy(max_entries=1, ttl_seconds=10_000)
        assert plan_eviction(entries, policy, now=1000.0) == ["ancient", "old"]

    def test_policy_query_roundtrip_with_ttl(self):
        policy = EvictionPolicy(max_entries=5, ttl_seconds=1800)
        assert policy.bounded
        assert EvictionPolicy.from_query(dict(
            kv.split("=") for kv in policy.as_query().lstrip("?").split("&")
        )) == policy
        parsed = EvictionPolicy.from_query({"ttl": "30m", "max_bytes": "1kb"})
        assert parsed == EvictionPolicy(max_bytes=1000, ttl_seconds=1800)
        with pytest.raises(ValueError):
            EvictionPolicy(ttl_seconds=-1)


class TestStoreEviction:
    def test_evict_honours_caps_lru_first(self, store):
        for i, key in enumerate(["a", "b", "c", "d"]):
            store.put(key, payload_for(key, i))
            store.touch(key)
        store.touch("a")  # refresh: "a" becomes most recently used
        evicted = store.evict(EvictionPolicy(max_entries=2))
        assert evicted == ["b", "c"]  # LRU order, "a" survives its age
        assert sorted(store.keys()) == ["a", "d"]

    def test_evict_by_bytes(self, store):
        for key in ["a", "b", "c"]:
            store.put(key, payload_for(key))
            store.touch(key)
        total = store.stats().total_bytes
        evicted = store.evict(EvictionPolicy(max_bytes=total // 3))
        assert len(evicted) == 2
        assert store.stats().total_bytes <= total // 3

    def test_uri_policy_enforced_on_put(self, tmp_path):
        uri = f"dir:{tmp_path / 'capped'}?max_entries=2"
        store = open_store(uri)
        assert store.policy == EvictionPolicy(max_entries=2)
        for i, key in enumerate(["a", "b", "c", "d"]):
            store.put(key, payload_for(key, i))
            store.touch(key)
        assert len(store) == 2  # the cap held during writes, not just after

    def test_ttl_evicts_only_expired_entries(self, tmp_path):
        """Age expiry on a real backend: jsondir last_used is file mtime, so
        an entry backdated past the TTL horizon goes; fresh ones stay."""
        store = JsonDirStore(tmp_path / "aged")
        store.put("old", payload_for("old"))
        store.put("fresh", payload_for("fresh"))
        ancient = 0  # epoch: comfortably past any horizon
        os.utime(tmp_path / "aged" / "old.json", (ancient, ancient))
        evicted = store.evict(EvictionPolicy(ttl_seconds=3600))
        assert evicted == ["old"]
        assert store.keys() == ["fresh"]

    def test_ttl_enforced_on_put_via_uri(self, tmp_path):
        store = open_store(f"dir:{tmp_path / 'ttl'}?ttl=1h")
        assert store.policy == EvictionPolicy(ttl_seconds=3600)
        assert store.policy.bounded
        store.put("old", payload_for("old"))
        os.utime(tmp_path / "ttl" / "old.json", (0, 0))
        store.put("fresh", payload_for("fresh"))  # bounded put runs eviction
        assert store.keys() == ["fresh"]


# ---------------------------------------------------------------------- #
# URIs
# ---------------------------------------------------------------------- #
class TestStoreUris:
    def test_plain_path_and_dir_scheme_are_jsondir(self, tmp_path):
        for target in (str(tmp_path), f"dir:{tmp_path}", f"jsondir:{tmp_path}", tmp_path):
            store = open_store(target)
            assert isinstance(store, JsonDirStore)
            assert store.root == tmp_path

    def test_sqlite_scheme(self, tmp_path):
        store = open_store(f"sqlite:///{tmp_path}/c.db")
        assert isinstance(store, SqliteStore)
        assert store.path == tmp_path / "c.db"
        relative = open_store("sqlite:rel.db")
        assert str(relative.path) == "rel.db"

    def test_none_and_empty_mean_no_store(self):
        assert open_store(None) is None
        assert open_store("") is None
        assert open_store("   ") is None

    def test_policy_query_params(self, tmp_path):
        store = open_store(f"sqlite:///{tmp_path}/c.db?max_entries=10&max_bytes=1KiB")
        assert store.policy == EvictionPolicy(max_entries=10, max_bytes=1024)

    def test_policy_params_work_on_bare_paths(self, tmp_path):
        """Caps apply (and typos fail) even without a dir: scheme prefix."""
        store = open_store(f"{tmp_path}/plain?max_entries=3")
        assert isinstance(store, JsonDirStore)
        assert store.root == tmp_path / "plain"
        assert store.policy == EvictionPolicy(max_entries=3)
        with pytest.raises(ValueError):
            open_store(f"{tmp_path}/plain?max_bytez=1G")  # typo'd cap: loud
        # a bare '?' with no key=value stays a literal path component
        literal = open_store(f"{tmp_path}/odd?name")
        assert literal.root.name == "odd?name"

    def test_bad_uris_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            open_store(f"sqlite:///{tmp_path}/c.db?max_funk=1")
        with pytest.raises(ValueError):
            open_store("sqlite://host/c.db")  # network locations unsupported
        with pytest.raises(ValueError):
            open_store("dir:")

    def test_http_scheme_opens_http_store(self):
        store = open_store("http://127.0.0.1:8787")
        assert isinstance(store, HttpStore)
        assert store.uri() == "http://127.0.0.1:8787"
        # policy params ride on network URIs exactly as on local ones
        capped = open_store("http://cachehost:8787?max_entries=10&max_bytes=1KiB")
        assert capped.policy == EvictionPolicy(max_entries=10, max_bytes=1024)
        assert capped.uri() == "http://cachehost:8787?max_entries=10&max_bytes=1024"
        # a path prefix (reverse proxy) is kept, trailing slashes are not
        prefixed = open_store("https://proxy.example/mas/")
        assert prefixed.uri() == "https://proxy.example/mas"

    def test_bad_http_uris_rejected(self):
        with pytest.raises(ValueError):
            open_store("http://")  # no host
        with pytest.raises(ValueError):
            open_store("http://host:8787?max_funk=1")  # typo'd cap: loud

    def test_shard_scheme_opens_sharded_store(self):
        store = open_store("shard:http://a:8787,http://b:8787")
        assert isinstance(store, ShardedStore)
        assert store.uri() == "shard:http://a:8787,http://b:8787"
        full = open_store(
            "shard:http://a:8787,http://b:8787?max_entries=10&replicas=2&ttl=7d"
        )
        assert full.replicas == 2
        assert full.policy == EvictionPolicy(max_entries=10, ttl_seconds=7 * 86400)
        # uri() round-trips through open_store to an equivalent fleet
        again = open_store(full.uri())
        assert again.uri() == full.uri()
        assert again.replicas == 2 and again.policy == full.policy

    def test_bad_shard_uris_rejected(self):
        with pytest.raises(ValueError, match="no endpoints"):
            open_store("shard:")
        with pytest.raises(ValueError, match="not an"):
            open_store("shard:http://a:8787,sqlite:///x.db")
        with pytest.raises(ValueError):
            # the first '?' ends the endpoint list, so a mid-list query is a
            # (bogus) fleet-wide parameter — loud either way
            open_store("shard:http://a:8787?x=1,http://b:8787")
        with pytest.raises(ValueError, match="query/fragment"):
            open_store("shard:http://a:8787#frag,http://b:8787")
        with pytest.raises(ValueError):
            open_store("shard:http://a:8787,http://b:8787?max_funk=1")


# ---------------------------------------------------------------------- #
# Entry schema
# ---------------------------------------------------------------------- #
class TestEntrySchema:
    def test_current_payload_is_ok(self):
        payload, status = normalize_payload(payload_for("k"))
        assert status == "ok" and payload["schema"] == ENTRY_SCHEMA_VERSION

    def test_v2_upgrade_derives_meta(self):
        tuning = {"scheduler": "flat", "workload": "XLM", "strategy": "grid", "budget": 9}
        upgraded, status = normalize_payload({"schema": 2, "key": "k", "tuning": tuning})
        assert status == "upgraded"
        assert upgraded["schema"] == ENTRY_SCHEMA_VERSION
        assert upgraded["meta"] == {
            "scheduler": "flat",
            "workload": "XLM",
            "strategy": "grid",
            "budget": 9,
            "suite": None,
        }
        assert upgraded["tuning"] == tuning

    def test_unknown_or_malformed_is_stale(self):
        assert normalize_payload({"schema": 99, "tuning": {}}) == (None, "stale")
        assert normalize_payload({"schema": ENTRY_SCHEMA_VERSION}) == (None, "stale")
        assert normalize_payload(["not", "a", "dict"]) == (None, "stale")


# ---------------------------------------------------------------------- #
# Migration
# ---------------------------------------------------------------------- #
@pytest.fixture
def tuning(edge_hw):
    workload = AttentionWorkload.self_attention(heads=4, seq=256, emb=64, name="store-wl")
    return AutoTuner(edge_hw, budget=8, seed=3).tune("mas", workload)


class TestMigration:
    def test_jsondir_sqlite_roundtrip_preserves_every_entry(self, tmp_path, tuning):
        origin = JsonDirStore(tmp_path / "origin")
        for i in range(5):
            payload = make_payload(f"key{i}", tuning_result_to_dict(tuning), suite="table1")
            origin.put(f"key{i}", payload)

        db = SqliteStore(tmp_path / "mid.db")
        back = JsonDirStore(tmp_path / "back")
        first = migrate_store(origin, db)
        second = migrate_store(db, back)
        assert first.migrated == second.migrated == 5
        assert not first.skipped_stale and not second.skipped_stale

        assert sorted(back.keys()) == sorted(origin.keys())
        for key in origin.keys():
            assert back.read(key) == origin.read(key)
            # same serialization, byte-for-byte identical files
            assert (back.root / f"{key}.json").read_bytes() == (
                origin.root / f"{key}.json"
            ).read_bytes()

    def test_migrate_upgrades_old_entries(self, tmp_path, tuning):
        origin = JsonDirStore(tmp_path / "origin")
        origin.write("old", {"schema": 2, "key": "old", "tuning": tuning_result_to_dict(tuning)})
        db = SqliteStore(tmp_path / "new.db")
        report = migrate_store(origin, db)
        assert report.migrated == 1 and report.upgraded == 1
        payload, status = db.lookup("old")
        assert status == "hit" and payload["schema"] == ENTRY_SCHEMA_VERSION

    def test_migrate_skips_existing_unless_overwrite(self, tmp_path):
        src = JsonDirStore(tmp_path / "src")
        dst = JsonDirStore(tmp_path / "dst")
        src.put("k", payload_for("k", 1))
        dst.put("k", payload_for("k", 2))
        report = migrate_store(src, dst)
        assert report.migrated == 0 and report.skipped_existing == 1
        assert dst.get("k")["meta"]["budget"] == 2
        report = migrate_store(src, dst, overwrite=True)
        assert report.migrated == 1
        assert dst.get("k")["meta"]["budget"] == 1

    def test_stale_entries_reported_not_lost(self, tmp_path):
        src = JsonDirStore(tmp_path / "src")
        src.write("weird", {"schema": 99, "key": "weird", "tuning": {}})
        src.put("fine", payload_for("fine"))
        report = migrate_store(src, SqliteStore(tmp_path / "dst.db"))
        assert report.migrated == 1
        assert report.skipped_stale == ["weird"]
        assert "stale" in report.summary()


# ---------------------------------------------------------------------- #
# End-to-end sweeps: bit-identity, migration warmth, PR-1-format caches
# ---------------------------------------------------------------------- #
def _matrix_fingerprint(matrix) -> dict:
    return {
        (network, method): (
            run.cycles,
            run.energy_pj,
            run.tuning.best_tiling if run.tuned else None,
            run.tuning.best_value if run.tuned else None,
            [r.value for r in run.tuning.history.records] if run.tuned else None,
        )
        for network, runs in matrix.items()
        for method, run in runs.items()
    }


class TestSweepBitIdentity:
    def test_backends_and_no_cache_agree_at_any_jobs_count(self, tmp_path):
        kwargs = dict(search_budget=BUDGET, seed=0)
        reference = _matrix_fingerprint(
            ExperimentRunner(**kwargs).run_matrix(FAST_NETWORKS, FAST_METHODS)
        )
        runners = [
            ExperimentRunner(**kwargs, cache_dir=tmp_path / "jsondir"),
            ExperimentRunner(**kwargs, cache_uri=f"sqlite:///{tmp_path}/serial.db"),
            ParallelRunner(**kwargs, jobs=2, cache_uri=f"dir:{tmp_path}/jsondir-par"),
            ParallelRunner(**kwargs, jobs=2, cache_uri=f"sqlite:///{tmp_path}/par.db"),
        ]
        for runner in runners:
            assert _matrix_fingerprint(runner.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
        # warm re-runs over every backend are bit-identical too, with 100% hits
        for cold in runners:
            warm = type(cold)(
                **kwargs,
                cache_uri=cold.cache_target,
                **({"jobs": 2} if isinstance(cold, ParallelRunner) else {}),
            )
            assert _matrix_fingerprint(warm.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
            stats = warm.cache_stats()
            assert stats["searches"] == 0 and stats["cache_misses"] == 0

    def test_parallel_worker_stats_aggregate_to_parent(self, tmp_path):
        """Worker-process cache counters surface in the parent's cache_stats."""
        kwargs = dict(search_budget=BUDGET, seed=0, cache_uri=f"sqlite:///{tmp_path}/s.db")
        cold = ParallelRunner(**kwargs, jobs=2)
        cold.run_matrix(FAST_NETWORKS, FAST_METHODS)
        cold_stats = cold.cache_stats()
        assert cold_stats["cache_misses"] == cold_stats["searches"] > 0
        assert cold_stats["cache_hits"] == 0 and cold_stats["cache_stale"] == 0

        warm = ParallelRunner(**kwargs, jobs=2)
        warm.run_matrix(FAST_NETWORKS, FAST_METHODS)
        warm_stats = warm.cache_stats()
        assert warm_stats["cache_hits"] == cold_stats["searches"]
        assert warm_stats["cache_misses"] == 0

    def test_warm_sweep_after_migration_gets_every_hit(self, tmp_path):
        """The acceptance path: jsondir cache -> migrate -> sqlite, 100% warm."""
        kwargs = dict(search_budget=BUDGET, seed=0)
        cold = ExperimentRunner(**kwargs, cache_dir=tmp_path / "jsondir")
        reference = _matrix_fingerprint(cold.run_matrix(FAST_NETWORKS, FAST_METHODS))
        searched = cold.cache_stats()["searches"]

        report = migrate_store(
            JsonDirStore(tmp_path / "jsondir"), SqliteStore(tmp_path / "migrated.db")
        )
        assert report.migrated == len(JsonDirStore(tmp_path / "jsondir").keys())
        assert not report.skipped_stale

        warm = ExperimentRunner(**kwargs, cache_uri=f"sqlite:///{tmp_path}/migrated.db")
        assert _matrix_fingerprint(warm.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
        stats = warm.cache_stats()
        assert stats["cache_hits"] == searched
        assert stats["searches"] == 0 and stats["cache_misses"] == 0

    def test_pr1_format_cache_is_upgraded_not_dropped(self, tmp_path, edge_hw):
        """Entries written in the old flat v2 layout keep hitting after the
        entry-schema bump — the stale-discard bug this PR fixes."""
        cache_dir = tmp_path / "cache"
        cold = ExperimentRunner(search_budget=BUDGET, seed=0, cache_dir=cache_dir)
        run = cold.run("mas", "ViT-B/14")

        # Rewrite every entry exactly as the pre-store ResultCache did.
        store = JsonDirStore(cache_dir)
        for key in store.keys():
            payload = store.read(key)
            old = {"schema": 2, "key": key, "tuning": payload["tuning"]}
            (cache_dir / f"{key}.json").write_text(json.dumps(old, indent=2, sort_keys=True))

        warm = ExperimentRunner(search_budget=BUDGET, seed=0, cache_dir=cache_dir)
        warm_run = warm.run("mas", "ViT-B/14")
        assert warm_run.cached
        assert warm_run.cycles == run.cycles
        assert warm_run.tuning.best_tiling == run.tuning.best_tiling
        # ... and the upgrade was persisted in place
        for key in store.keys():
            assert store.read(key)["schema"] == ENTRY_SCHEMA_VERSION


class TestHttpSweepBitIdentity:
    """The acceptance matrix: http:// serves the same sweeps as local stores."""

    def test_all_backends_and_no_cache_agree_at_jobs_1_and_4(
        self, store_server, tmp_path
    ):
        kwargs = dict(search_budget=BUDGET, seed=0)
        reference = _matrix_fingerprint(
            ParallelRunner(**kwargs, jobs=1, use_cache=False).run_matrix(
                FAST_NETWORKS, FAST_METHODS
            )
        )
        uris = [
            f"dir:{tmp_path}/jsondir",
            f"sqlite:///{tmp_path}/local.db",
            server_url(store_server),
        ]
        for jobs in (1, 4):
            nocache = ParallelRunner(**kwargs, jobs=jobs, use_cache=False)
            assert (
                _matrix_fingerprint(nocache.run_matrix(FAST_NETWORKS, FAST_METHODS))
                == reference
            )
            for uri in uris:
                # jobs=1 runs cold (first sight of each store), jobs=4 warm —
                # both must be bit-identical to the uncached serial sweep.
                runner = ParallelRunner(**kwargs, jobs=jobs, cache_uri=uri)
                assert (
                    _matrix_fingerprint(runner.run_matrix(FAST_NETWORKS, FAST_METHODS))
                    == reference
                ), f"mismatch at jobs={jobs} uri={uri}"

    def test_warm_http_sweep_reports_full_hits_across_workers(self, store_server):
        kwargs = dict(search_budget=BUDGET, seed=0, cache_uri=server_url(store_server))
        cold = ParallelRunner(**kwargs, jobs=2)
        cold.run_matrix(FAST_NETWORKS, FAST_METHODS)
        cold_stats = cold.cache_stats()
        assert cold_stats["cache_misses"] == cold_stats["searches"] > 0

        warm = ParallelRunner(**kwargs, jobs=2)
        warm.run_matrix(FAST_NETWORKS, FAST_METHODS)
        warm_stats = warm.cache_stats()
        assert warm_stats["cache_hits"] == cold_stats["searches"]
        assert warm_stats["cache_misses"] == 0 and warm_stats["searches"] == 0

        # ... and the *service* saw those worker lookups too (fleet metrics).
        metrics = store_server.service.metrics.snapshot()
        assert metrics["hits"] >= warm_stats["cache_hits"]
        assert metrics["misses"] >= cold_stats["cache_misses"]

    def test_migration_into_and_out_of_http_store(self, store_server, tmp_path, tuning):
        """jsondir -> http -> jsondir round trip: zero loss, batched trips."""
        origin = JsonDirStore(tmp_path / "origin")
        for i in range(5):
            origin.put(
                f"key{i}", make_payload(f"key{i}", tuning_result_to_dict(tuning))
            )
        served = HttpStore(server_url(store_server))
        back = JsonDirStore(tmp_path / "back")
        first = migrate_store(origin, served)
        second = migrate_store(served, back)
        assert first.migrated == second.migrated == 5
        assert sorted(back.keys()) == sorted(origin.keys())
        for key in origin.keys():
            assert back.read(key) == origin.read(key)
        served.close()

    def test_unreachable_service_fails_the_runner_eagerly(self):
        with pytest.raises(ValueError, match="unreachable"):
            ExperimentRunner(search_budget=BUDGET, cache_uri="http://127.0.0.1:9")

    def test_non_store_http_server_fails_the_runner_eagerly(self):
        """An HTTP server that answers /healthz with 200 text/html (a random
        web server, not a store service) gets the same clear error."""
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class WebPage(BaseHTTPRequestHandler):
            def do_GET(self):
                data = b"<html>hello</html>"
                self.send_response(200)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args):
                pass

        srv = ThreadingHTTPServer(("127.0.0.1", 0), WebPage)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(ValueError, match="unreachable"):
                ExperimentRunner(
                    search_budget=BUDGET,
                    cache_uri=f"http://127.0.0.1:{srv.server_address[1]}",
                )
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)

    def test_non_http_endpoint_fails_the_runner_eagerly(self):
        """A port speaking something other than HTTP (BadStatusLine) must
        produce the same clear 'unreachable' error, not a raw traceback."""
        import socket
        import threading

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        port = listener.getsockname()[1]
        stop = threading.Event()

        def garbage_server():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                conn.sendall(b"definitely not http\n")
                conn.close()

        thread = threading.Thread(target=garbage_server, daemon=True)
        thread.start()
        try:
            with pytest.raises(ValueError, match="unreachable"):
                ExperimentRunner(
                    search_budget=BUDGET, cache_uri=f"http://127.0.0.1:{port}"
                )
        finally:
            stop.set()
            thread.join(timeout=5)
            listener.close()


# ---------------------------------------------------------------------- #
# Sharded fleet
# ---------------------------------------------------------------------- #
@pytest.fixture
def shard_fleet(tmp_path):
    """Two live store services (one fresh SQLite backend each)."""
    with running_server(SqliteStore(tmp_path / "shard-a.db")) as a:
        with running_server(SqliteStore(tmp_path / "shard-b.db")) as b:
            yield a, b


def _kill(server) -> None:
    """Take one shard dark mid-test (fixture teardown stays idempotent)."""
    server.shutdown()
    server.server_close()


class TestShardedStore:
    """Functional coverage of the fleet client against live shard services."""

    def _fleet(self, servers, **kwargs) -> ShardedStore:
        return ShardedStore([server_url(s) for s in servers], **kwargs)

    def test_keys_spread_without_replication(self, shard_fleet):
        fleet = self._fleet(shard_fleet)
        keys = [f"k{i}" for i in range(16)]
        for i, key in enumerate(keys):
            fleet.put(key, payload_for(key, i))
        assert sorted(fleet.keys()) == sorted(keys)
        per_shard = []
        for server in shard_fleet:
            child = HttpStore(server_url(server))
            per_shard.append(len(child.keys()))
            child.close()
        assert sum(per_shard) == len(keys)  # replicas=1: no duplication
        assert fleet.stats().entries == len(keys)
        fleet.close()

    def test_replication_writes_to_every_owner(self, shard_fleet):
        fleet = self._fleet(shard_fleet, replicas=2)
        keys = [f"r{i}" for i in range(8)]
        for i, key in enumerate(keys):
            fleet.put(key, payload_for(key, i))
        for server in shard_fleet:
            child = HttpStore(server_url(server))
            assert sorted(child.keys()) == sorted(keys)
            child.close()
        # the union view deduplicates: 8 entries, not 16
        assert fleet.stats().entries == len(keys)
        fleet.close()

    def test_failover_after_shard_death_with_replication(self, shard_fleet):
        a, b = shard_fleet
        writer = self._fleet(shard_fleet, replicas=2)
        keys = [f"f{i}" for i in range(12)]
        for i, key in enumerate(keys):
            writer.put(key, payload_for(key, i))
        b_index = writer.endpoints.index(server_url(b))
        # at least one key's *primary* owner is the shard about to die
        primary_on_b = next(k for k in keys if writer._owners(k)[0] == b_index)
        writer.close()
        _kill(b)
        # a fresh client (a new sweep host joining after the shard died —
        # the writer's old keep-alive sockets would mask the death in-test)
        fleet = self._fleet(shard_fleet, replicas=2)
        for key in keys:
            payload, status = fleet.lookup(key)
            assert status == "hit" and payload is not None, key
        stats = fleet.fleet_stats()
        assert stats["failovers"] >= 1, primary_on_b
        assert stats["endpoints"][server_url(b)] == "down"
        assert stats["endpoints"][server_url(a)] == "up"
        # writes keep landing on the surviving replica and serve back
        fleet.put("late", payload_for("late"))
        assert fleet.lookup("late")[1] == "hit"
        fleet.close()

    def test_degrades_to_miss_without_replication(self, shard_fleet):
        a, b = shard_fleet
        writer = self._fleet(shard_fleet)
        keys = [f"d{i}" for i in range(16)]
        for i, key in enumerate(keys):
            writer.put(key, payload_for(key, i))
        writer.close()
        survivor = HttpStore(server_url(a))
        a_keys = set(survivor.keys())
        survivor.close()
        _kill(b)
        fleet = self._fleet(shard_fleet)  # fresh client, see failover test
        for key in keys:
            payload, status = fleet.lookup(key)
            if key in a_keys:
                assert status == "hit" and payload is not None
            else:  # owned only by the dead shard: a miss, not an exception
                assert status == "miss" and payload is None
        assert fleet.fleet_stats()["degraded_misses"] == len(keys) - len(a_keys)
        got = fleet.read_many(keys)
        assert all(got[k] is not None for k in a_keys)
        assert all(got[k] is None for k in set(keys) - a_keys)
        fleet.close()

    def test_read_many_put_many_fan_out(self, shard_fleet):
        fleet = self._fleet(shard_fleet, replicas=2)
        entries = {f"b{i}": payload_for(f"b{i}", i) for i in range(10)}
        fleet.put_many(entries)
        got = fleet.read_many(list(entries) + ["missing"])
        assert got["missing"] is None
        for key, payload in entries.items():
            assert got[key] == payload
        fleet.close()

    def test_hedged_reads_for_hot_keys(self, shard_fleet):
        fleet = self._fleet(shard_fleet, replicas=2)
        fleet.put("hot", payload_for("hot"))
        for _ in range(6):
            assert fleet.lookup("hot")[1] == "hit"
        assert fleet.fleet_stats()["hedged_lookups"] > 0
        fleet.close()

    def test_pickle_roundtrip_resets_health(self, shard_fleet):
        import pickle

        fleet = self._fleet(shard_fleet, replicas=2)
        fleet.put("p", payload_for("p"))
        clone = pickle.loads(pickle.dumps(fleet))
        assert clone.uri() == fleet.uri()
        assert clone.lookup("p")[1] == "hit"
        clone.close()
        fleet.close()

    def test_migration_into_and_out_of_a_fleet(self, shard_fleet, tmp_path, tuning):
        origin = JsonDirStore(tmp_path / "origin")
        for i in range(6):
            origin.put(f"key{i}", make_payload(f"key{i}", tuning_result_to_dict(tuning)))
        fleet = self._fleet(shard_fleet, replicas=2)
        back = JsonDirStore(tmp_path / "back")
        first = migrate_store(origin, fleet)
        second = migrate_store(fleet, back)
        assert first.migrated == second.migrated == 6
        for key in origin.keys():
            assert back.read(key) == origin.read(key)
        fleet.close()


class TestShardSweepBitIdentity:
    """The fleet acceptance matrix: ``shard:`` serves the same sweeps as one
    store — at any jobs level, and across a shard dying between sweeps."""

    def _shard_uri(self, servers, replicas: int) -> str:
        spec = ",".join(server_url(s) for s in servers)
        return f"shard:{spec}?replicas={replicas}" if replicas > 1 else f"shard:{spec}"

    def test_shard_sweeps_match_single_store_at_jobs_1_and_4(
        self, shard_fleet, tmp_path
    ):
        kwargs = dict(search_budget=BUDGET, seed=0)
        reference = _matrix_fingerprint(
            ExperimentRunner(
                **kwargs, cache_uri=f"sqlite:///{tmp_path}/single.db"
            ).run_matrix(FAST_NETWORKS, FAST_METHODS)
        )
        uri = self._shard_uri(shard_fleet, replicas=2)
        for jobs in (1, 4):
            runner = ParallelRunner(**kwargs, jobs=jobs, cache_uri=uri)
            assert (
                _matrix_fingerprint(runner.run_matrix(FAST_NETWORKS, FAST_METHODS))
                == reference
            ), f"mismatch at jobs={jobs}"
        warm = ParallelRunner(**kwargs, jobs=2, cache_uri=uri)
        assert _matrix_fingerprint(warm.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
        stats = warm.cache_stats()
        assert stats["searches"] == 0 and stats["cache_misses"] == 0

    def test_shard_death_fails_over_bit_identically_with_replication(
        self, shard_fleet, tmp_path
    ):
        _, b = shard_fleet
        kwargs = dict(search_budget=BUDGET, seed=0)
        reference = _matrix_fingerprint(
            ExperimentRunner(
                **kwargs, cache_uri=f"sqlite:///{tmp_path}/single.db"
            ).run_matrix(FAST_NETWORKS, FAST_METHODS)
        )
        uri = self._shard_uri(shard_fleet, replicas=2)
        cold = ParallelRunner(**kwargs, jobs=2, cache_uri=uri)
        assert _matrix_fingerprint(cold.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference

        _kill(b)  # one shard goes dark with the fleet still warm

        warm = ParallelRunner(**kwargs, jobs=4, cache_uri=uri)
        assert _matrix_fingerprint(warm.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
        stats = warm.cache_stats()
        # every entry lives on the surviving replica: zero recomputation
        assert stats["searches"] == 0 and stats["cache_misses"] == 0

    def test_unreplicated_shard_death_degrades_to_recompute(
        self, shard_fleet, tmp_path
    ):
        _, b = shard_fleet
        kwargs = dict(search_budget=BUDGET, seed=0)
        reference = _matrix_fingerprint(
            ExperimentRunner(
                **kwargs, cache_uri=f"sqlite:///{tmp_path}/single.db"
            ).run_matrix(FAST_NETWORKS, FAST_METHODS)
        )
        uri = self._shard_uri(shard_fleet, replicas=1)
        cold = ParallelRunner(**kwargs, jobs=2, cache_uri=uri)
        assert _matrix_fingerprint(cold.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference

        _kill(b)

        # entries on the dead shard degrade to misses and are recomputed —
        # deterministically, so the matrix stays bit-identical either way.
        warm = ParallelRunner(**kwargs, jobs=2, cache_uri=uri)
        assert _matrix_fingerprint(warm.run_matrix(FAST_NETWORKS, FAST_METHODS)) == reference
        stats = warm.cache_stats()
        assert stats["cache_misses"] == stats["searches"]


# ---------------------------------------------------------------------- #
# Concurrency
# ---------------------------------------------------------------------- #
def _hammer_sqlite(args: tuple[str, int, int]) -> int:
    """Worker: interleave writes and reads of a shared key set."""
    path, worker, rounds = args
    store = SqliteStore(path)
    ok = 0
    for i in range(rounds):
        key = f"key{i % 8}"
        store.put(key, payload_for(key, i % 8))
        payload = store.get(key)
        ok += payload is not None and payload["meta"]["budget"] == i % 8
    store.close()
    return ok


class TestSqliteConcurrency:
    def test_fork_discards_inherited_connections(self, tmp_path):
        """A forked child must not share the parent's live connection: the
        at-fork hook clears it, so any child-side use reconnects fresh."""
        store = SqliteStore(tmp_path / "forked.db")
        store.put("k", payload_for("k", 3))
        assert store._conn is not None  # live connection in the parent
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child: report the hook's effect, then a fresh read
            try:
                dropped = store._conn is None
                reread = store.get("k") is not None  # reconnects on demand
                os.write(write_fd, b"1" if dropped and reread else b"0")
            finally:
                os._exit(0)
        os.close(write_fd)
        try:
            assert os.waitpid(pid, 0)[1] == 0
            assert os.read(read_fd, 1) == b"1"
        finally:
            os.close(read_fd)
        assert store._conn is not None  # the parent's connection is untouched
        assert store.get("k")["meta"]["budget"] == 3
        store.close()


    def test_concurrent_writers_produce_consistent_entries(self, tmp_path):
        path = str(tmp_path / "hammer.db")
        rounds = 25
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(_hammer_sqlite, [(path, w, rounds) for w in range(4)])
            )
        assert results == [rounds] * 4  # every read saw a complete entry
        store = SqliteStore(path)
        assert len(store) == 8
        for i in range(8):
            payload, status = store.lookup(f"key{i}")
            assert status == "hit"
            assert payload["meta"]["budget"] == i
        assert store.stats().stale_entries == 0
        store.close()

    def test_parallel_sweep_sharing_one_db_matches_serial(self, tmp_path):
        kwargs = dict(search_budget=BUDGET, seed=0)
        serial = _matrix_fingerprint(
            ExperimentRunner(**kwargs).run_matrix(FAST_NETWORKS, FAST_METHODS)
        )
        uri = f"sqlite:///{tmp_path}/shared.db"
        parallel = ParallelRunner(**kwargs, jobs=4, cache_uri=uri)
        assert _matrix_fingerprint(parallel.run_matrix(FAST_NETWORKS, FAST_METHODS)) == serial


# ---------------------------------------------------------------------- #
# ResultCache facade over URIs
# ---------------------------------------------------------------------- #
class TestResultCacheOverStores:
    def test_cache_accepts_sqlite_uri(self, tmp_path, tuning):
        cache = ResultCache(f"sqlite:///{tmp_path}/c.db")
        assert cache.enabled and cache.cache_dir is None
        cache.store("k", tuning, suite="table1")
        assert len(cache) == 1
        loaded = cache.load("k")
        assert loaded.best_tiling == tuning.best_tiling
        assert cache.stats() == {"hits": 1, "misses": 0, "stale": 0}
        (info,) = cache.backend.entries()
        assert info.suite == "table1" and info.scheduler == "mas"

    def test_sqlite_entries_queryable_by_indexed_columns(self, tmp_path, tuning):
        store = SqliteStore(tmp_path / "c.db")
        store.put("a", make_payload("a", tuning_result_to_dict(tuning), suite="s1"))
        store.put("b", make_payload("b", tuning_result_to_dict(tuning), suite="s2"))
        assert {e.key for e in store.entries(suite="s1")} == {"a"}
        assert {e.key for e in store.entries(scheduler="mas")} == {"a", "b"}
        assert store.entries(workload="nope") == []
        with pytest.raises(ValueError):
            store.entries(flavour="vanilla")

    def test_key_schema_version_still_pins_keys(self):
        """The key schema stayed at 2 on purpose: entry-layout changes must
        not orphan previously tuned work (keys are how warm sweeps find it)."""
        assert KEY_SCHEMA_VERSION == 2

    def test_env_uri_supplies_runner_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("MAS_CACHE_URI", f"sqlite:///{tmp_path}/env.db")
        runner = ExperimentRunner(search_budget=BUDGET, seed=0)
        assert runner.cache_target == f"sqlite:///{tmp_path}/env.db"
        runner.run("mas", "ViT-B/14")
        assert (tmp_path / "env.db").exists()
        # explicit targets win over the environment
        explicit = ExperimentRunner(search_budget=BUDGET, cache_dir=tmp_path / "dir")
        assert explicit.cache_target == str(tmp_path / "dir")
        # and --no-cache still wins over everything
        off = ExperimentRunner(search_budget=BUDGET, seed=0, use_cache=False)
        off.run("mas", "ViT-B/14")
        spec = off.pair_spec("mas", "ViT-B/14")
        assert spec.use_cache is False

    def test_bad_env_uri_fails_eagerly(self, monkeypatch):
        monkeypatch.setenv("MAS_CACHE_URI", "sqlite://bad-host/c.db")
        with pytest.raises(ValueError):
            ExperimentRunner(search_budget=BUDGET)

    def test_no_cache_bypasses_broken_env_uri(self, monkeypatch):
        """--no-cache is the escape hatch from a misconfigured store URI."""
        monkeypatch.setenv("MAS_CACHE_URI", "sqlite://bad-host/c.db")
        runner = ExperimentRunner(search_budget=BUDGET, seed=0, use_cache=False)
        assert runner.run("mas", "ViT-B/14").cycles > 0

    def test_read_only_store_still_serves_hits(self, tmp_path, tuning):
        """LRU touches are best-effort: a read-only shared cache stays warm."""
        root = tmp_path / "ro"
        writer = JsonDirStore(root)
        writer.put("k", make_payload("k", tuning_result_to_dict(tuning)))
        for path in [*root.glob("*.json"), root]:
            path.chmod(0o555 if path.is_dir() else 0o444)
        try:
            cache = ResultCache(f"dir:{root}")
            loaded = cache.load("k")
            assert loaded is not None and cache.hits == 1
        finally:
            root.chmod(0o755)
            for path in root.glob("*.json"):
                path.chmod(0o644)

    def test_read_only_sqlite_store_still_serves_hits(self, tmp_path, tuning):
        """Connection setup must not require write access to the database."""
        db = tmp_path / "ro.db"
        writer = SqliteStore(db)
        writer.put("k", make_payload("k", tuning_result_to_dict(tuning)))
        writer.close()
        for path in tmp_path.glob("ro.db*"):  # the db plus any -wal/-shm
            path.chmod(0o444)
        tmp_path.chmod(0o555)
        try:
            cache = ResultCache(f"sqlite:///{db}")
            loaded = cache.load("k")
            assert loaded is not None and cache.hits == 1
            cache.close()
        finally:
            tmp_path.chmod(0o755)
            for path in tmp_path.glob("ro.db*"):
                path.chmod(0o644)

    def test_sqlite_reads_on_non_database_file_are_misses(self, tmp_path):
        """Pointing a sqlite URI at a non-SQLite file degrades to misses
        (and empty stats), not DatabaseError tracebacks mid-sweep."""
        bogus = tmp_path / "not-a-db.db"
        bogus.write_text("definitely not a sqlite file, but long enough " * 20)
        store = SqliteStore(bogus)
        assert store.read("k") is None
        assert store.keys() == []
        assert store.stats().entries == 0
        store.close()

    def test_sqlite_uri_with_tilde_expands_home(self):
        import pathlib

        store = open_store("sqlite:///~/mas-test-cache.db")
        assert store.path == pathlib.Path("~/mas-test-cache.db").expanduser()
        assert "~" not in str(store.path)

    def test_sqlite_reads_on_non_store_file_are_misses(self, tmp_path):
        """A schema-less database file yields misses, not OperationalErrors."""
        db = tmp_path / "empty.db"
        conn = __import__("sqlite3").connect(db)  # a real db with no tables
        conn.close()
        store = SqliteStore(db)
        # simulate the schema being un-creatable by dropping it post-connect
        store._connect().executescript("DROP TABLE entries; DROP TABLE store_meta;")
        assert store.read("k") is None
        assert store.keys() == []
        assert store.entries() == []
        assert store.stats().entries == 0
        store.close()
