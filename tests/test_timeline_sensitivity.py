"""Tests for the timeline renderer and the hardware sensitivity sweep."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    SWEEPABLE_PARAMETERS,
    default_sweep_values,
    run_sensitivity,
)
from repro.analysis.timeline import (
    KIND_SYMBOLS,
    TimelineOptions,
    lane_symbols,
    render_comparison,
    render_timeline,
)
from repro.hardware.presets import simulated_edge_device
from repro.schedulers import make_scheduler
from repro.sim.tasks import TaskGraph, TaskKind, dma_resource, mac_resource, vec_resource
from repro.sim.engine import simulate_graph
from repro.utils.units import MB
from repro.workloads.attention import AttentionWorkload


@pytest.fixture(scope="module")
def demo_traces():
    hw = simulated_edge_device()
    workload = AttentionWorkload.self_attention(heads=2, seq=256, emb=64, name="timeline-demo")
    return {
        name: make_scheduler(name, hw).simulate(workload).trace for name in ("flat", "mas")
    }


class TestLaneSymbols:
    def test_simple_lane_layout(self):
        g = TaskGraph()
        g.add("mm", TaskKind.MATMUL, mac_resource(0), 50)
        g.add("mm2", TaskKind.MATMUL, mac_resource(0), 50)
        trace = simulate_graph(g)
        lane = lane_symbols(trace, mac_resource(0), width=10, total_cycles=100)
        assert lane == "M" * 10
        assert lane_symbols(trace, vec_resource(0), 10, 100) == "." * 10

    def test_partial_occupancy_and_idle(self):
        g = TaskGraph()
        load = g.add("ld", TaskKind.LOAD, dma_resource(), 50)
        g.add("sm", TaskKind.SOFTMAX, vec_resource(0), 50, deps=[load])
        trace = simulate_graph(g)
        lane = lane_symbols(trace, vec_resource(0), width=10, total_cycles=100)
        assert lane == "." * 5 + "S" * 5

    def test_zero_total_cycles(self):
        assert lane_symbols(simulate_graph(TaskGraph()), "x", 8, 0) == "." * 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            lane_symbols(simulate_graph(TaskGraph()), "x", 0, 10)


class TestRenderTimeline:
    def test_contains_all_resources_and_legend(self, demo_traces):
        text = render_timeline(demo_traces["mas"], TimelineOptions(width=60), title="MAS")
        assert text.startswith("MAS")
        for resource in demo_traces["mas"].resources():
            assert resource in text
        assert "legend" in text and "M=matmul" in text

    def test_resource_subset_and_no_legend(self, demo_traces):
        options = TimelineOptions(width=40, resources=("core0.mac",), show_legend=False)
        text = render_timeline(demo_traces["flat"], options)
        assert "core0.mac" in text and "core1.mac" not in text
        assert "legend" not in text

    def test_mas_lane_shows_concurrent_mac_and_vec(self, demo_traces):
        """In the MAS timeline some bucket has both a MAC symbol and a VEC symbol."""
        options = TimelineOptions(width=80, show_legend=False)
        trace = demo_traces["mas"]
        mac = lane_symbols(trace, "core0.mac", 80, trace.total_cycles)
        vec = lane_symbols(trace, "core0.vec", 80, trace.total_cycles)
        both_busy = sum(1 for a, b in zip(mac, vec) if a == "M" and b == "S")
        assert both_busy > 0

    def test_every_kind_has_a_symbol(self):
        assert set(KIND_SYMBOLS) == set(TaskKind)


class TestRenderComparison:
    def test_normalized_to_slowest(self, demo_traces):
        text = render_comparison(demo_traces, TimelineOptions(width=50))
        assert "flat" in text and "mas" in text
        assert "100% of slowest" in text
        assert "legend" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_comparison({})


class TestSensitivity:
    def test_sweepable_parameters(self):
        assert set(SWEEPABLE_PARAMETERS) == {"l1_bytes", "dram_bytes_per_cycle", "vec_throughput"}
        with pytest.raises(ValueError):
            run_sensitivity("frequency", "ViT-B/14", use_search=False)

    def test_default_values_include_baseline(self):
        hw = simulated_edge_device()
        for parameter in SWEEPABLE_PARAMETERS:
            values = default_sweep_values(parameter, hw)
            assert len(values) >= 4

    def test_vec_throughput_sweep_shape(self):
        """The MAS advantage peaks near balanced MAC/VEC and shrinks at the extremes."""
        result = run_sensitivity(
            "vec_throughput", "ViT-B/14", values=[8, 32, 128], use_search=False
        )
        speedups = result.speedups()
        assert len(speedups) == 3
        assert all(s >= 1.0 for s in speedups)
        assert speedups[1] >= speedups[2]  # far-oversized VEC: MAC-bound, gap closes

    def test_dram_bandwidth_sweep(self):
        """At very low bandwidth every fused dataflow is DMA-bound and the gap closes."""
        result = run_sensitivity(
            "dram_bytes_per_cycle", "ViT-B/14", values=[0.5, 8.0], use_search=False
        )
        starved, nominal = result.points
        assert starved.speedup <= nominal.speedup + 0.05
        assert starved.mas_cycles > nominal.mas_cycles

    def test_l1_sweep_rows_and_format(self):
        result = run_sensitivity(
            "l1_bytes", "ViT-B/14", values=[1 * MB, 5 * MB], use_search=False
        )
        assert len(result.as_rows()) == 2
        text = result.format()
        assert "l1_bytes" in text and "MAS speedup" in text
        assert result.baseline_value == 5 * MB
