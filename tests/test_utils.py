"""Unit tests for :mod:`repro.utils` (units, validation, rng, serialization)."""

from __future__ import annotations

import dataclasses
import enum
import math

import numpy as np
import pytest

from repro.utils.rng import derive_rng, make_rng
from repro.utils.serialization import dump_json, load_json, to_jsonable
from repro.utils.units import (
    GB,
    KB,
    MB,
    bandwidth_bytes_per_cycle,
    bytes_to_human,
    cycles_to_milliseconds,
    cycles_to_seconds,
    picojoules_to_joules,
    picojoules_to_millijoules,
)
from repro.utils.validation import (
    ceil_div,
    check_non_negative,
    check_positive_int,
    check_probability,
    clamp,
    divisors,
    require,
)


class TestUnits:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(3.75e9, 3.75e9) == pytest.approx(1.0)
        assert cycles_to_milliseconds(3.75e6, 3.75e9) == pytest.approx(1.0)

    def test_cycles_to_seconds_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)

    def test_picojoule_conversions(self):
        assert picojoules_to_millijoules(1e9) == pytest.approx(1.0)
        assert picojoules_to_joules(1e12) == pytest.approx(1.0)

    def test_bytes_to_human(self):
        assert bytes_to_human(512) == "512 B"
        assert bytes_to_human(5 * MB) == "5.00 MiB"
        assert bytes_to_human(3 * GB) == "3.00 GiB"

    def test_bandwidth_conversion(self):
        assert bandwidth_bytes_per_cycle(30e9, 3.75e9) == pytest.approx(8.0)

    def test_bandwidth_conversion_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bandwidth_bytes_per_cycle(0, 1e9)
        with pytest.raises(ValueError):
            bandwidth_bytes_per_cycle(1e9, 0)


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "never raised")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0
        with pytest.raises(ValueError):
            ceil_div(5, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(16) == [1, 2, 4, 8, 16]
        with pytest.raises(ValueError):
            divisors(0)

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-5, 0, 10) == 0
        assert clamp(50, 0, 10) == 10
        with pytest.raises(ValueError):
            clamp(1, 5, 0)


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).standard_normal(10)
        b = make_rng(7).standard_normal(10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).standard_normal(10)
        b = make_rng(2).standard_normal(10)
        assert not np.allclose(a, b)

    def test_derive_rng_streams_are_independent_of_iteration_count(self):
        parent = make_rng(0)
        child = derive_rng(parent, 3)
        assert isinstance(child, np.random.Generator)
        with pytest.raises(ValueError):
            derive_rng(make_rng(0), -1)


class _Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class _Point:
    x: int
    y: float
    label: str


class TestSerialization:
    def test_scalars_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(3) == 3
        assert to_jsonable("s") == "s"

    def test_numpy_and_enum_and_dataclass(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float32(0.5)) == pytest.approx(0.5)
        assert to_jsonable(_Color.RED) == "red"
        assert to_jsonable(_Point(1, 2.0, "p")) == {"x": 1, "y": 2.0, "label": "p"}
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_containers_recurse(self):
        payload = {"a": [_Point(0, 0.0, "o"), (1, 2)], "b": {"c": np.int32(9)}}
        assert to_jsonable(payload) == {
            "a": [{"x": 0, "y": 0.0, "label": "o"}, [1, 2]],
            "b": {"c": 9},
        }

    def test_unserializable_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_dump_and_load_roundtrip(self, tmp_path):
        path = dump_json({"x": [1, 2, 3]}, tmp_path / "sub" / "out.json")
        assert path.exists()
        assert load_json(path) == {"x": [1, 2, 3]}
