"""Unit tests for :mod:`repro.workloads` (attention shapes, Table 1, SD-1.5 UNet)."""

from __future__ import annotations

import pytest

from repro.workloads.attention import AttentionWorkload
from repro.workloads.networks import NETWORKS, get_network, list_networks, table1_rows
from repro.workloads.stable_diffusion import sd15_reduced_unet


class TestAttentionWorkload:
    def test_self_attention_constructor(self):
        wl = AttentionWorkload.self_attention(heads=12, seq=512, emb=64, name="bert")
        assert wl.seq_q == wl.seq_kv == 512
        assert wl.name == "bert"
        assert wl.num_head_blocks == 12

    def test_derived_sizes(self):
        wl = AttentionWorkload(batch=2, heads=4, seq_q=128, seq_kv=256, emb=32, dtype_bytes=2)
        assert wl.q_elements == 2 * 4 * 128 * 32
        assert wl.kv_elements == 2 * 4 * 256 * 32
        assert wl.score_elements == 2 * 4 * 128 * 256
        assert wl.q_bytes == wl.q_elements * 2
        assert wl.input_bytes == wl.q_bytes + wl.k_bytes + wl.v_bytes
        assert wl.output_bytes == wl.q_bytes

    def test_work_counts(self):
        wl = AttentionWorkload(batch=1, heads=2, seq_q=64, seq_kv=64, emb=16)
        assert wl.qk_macs == 2 * 64 * 64 * 16
        assert wl.pv_macs == wl.qk_macs
        assert wl.total_macs == 2 * wl.qk_macs
        assert wl.softmax_elements == wl.score_elements

    def test_with_seq_and_with_batch(self):
        wl = AttentionWorkload.self_attention(heads=2, seq=64, emb=16)
        longer = wl.with_seq(256)
        assert longer.seq_q == longer.seq_kv == 256
        cross = wl.with_seq(64, 128)
        assert cross.seq_q == 64 and cross.seq_kv == 128
        assert wl.with_batch(4).batch == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            AttentionWorkload(heads=0)
        with pytest.raises(ValueError):
            AttentionWorkload(seq_q=-1)

    def test_describe_contains_shape(self):
        text = AttentionWorkload.self_attention(heads=8, seq=512, emb=128, name="XLM").describe()
        assert "XLM" in text and "H=8" in text and "Nq=512" in text


class TestTable1Registry:
    def test_all_twelve_networks_present(self):
        assert len(list_networks()) == 12
        assert len(NETWORKS) == 12

    @pytest.mark.parametrize(
        "name, heads, seq, hidden, emb",
        [
            ("BERT-Base & T5-Base", 12, 512, 768, 64),
            ("BERT-Large & T5-Large", 16, 512, 1024, 64),
            ("BERT-Small", 8, 512, 512, 64),
            ("Llama3-8B & T5-3B (T5-XL)", 32, 512, 4096, 128),
            ("T5-Mini & T5-Small", 8, 512, 256, 32),
            ("ViT-B/14", 12, 196, 768, 64),
            ("ViT-L/14", 16, 196, 1024, 64),
            ("ViT-H/14", 16, 196, 1280, 80),
            ("ViT-B/16", 12, 256, 768, 64),
            ("ViT-L/16", 16, 256, 1024, 64),
            ("ViT-H/16", 16, 256, 1280, 80),
            ("XLM", 8, 512, 1024, 128),
        ],
    )
    def test_table1_values(self, name, heads, seq, hidden, emb):
        """Every row of Table 1 is reproduced exactly."""
        cfg = get_network(name)
        assert (cfg.heads, cfg.seq, cfg.hidden, cfg.emb) == (heads, seq, hidden, emb)

    def test_prefix_lookup(self):
        assert get_network("BERT-Base").heads == 12
        assert get_network("llama3").emb == 128
        with pytest.raises(KeyError):
            get_network("GPT-7")
        with pytest.raises(KeyError, match="ambiguous"):
            get_network("ViT")

    def test_workload_instantiation(self):
        wl = get_network("XLM").workload(batch=2)
        assert wl.heads == 8 and wl.seq_q == 512 and wl.emb == 128 and wl.batch == 2
        assert wl.name == "XLM"

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 12
        assert set(rows[0]) == {"network", "heads", "seq", "hidden", "emb_kv"}


class TestStableDiffusionWorkload:
    def test_fifteen_units(self):
        unet = sd15_reduced_unet()
        assert unet.num_units == 15

    def test_largest_unit_matches_paper(self):
        """The largest attention layer has 2 heads, N=4096, E=64 (Section 5.2.2)."""
        largest = sd15_reduced_unet().largest_unit
        assert largest.heads == 2 and largest.seq == 4096 and largest.emb == 64

    def test_workloads_generated_for_all_units(self):
        unet = sd15_reduced_unet()
        workloads = unet.workloads()
        assert len(workloads) == 15
        assert all(w.seq_q == w.seq_kv for w in workloads)

    def test_non_attention_fraction_bounds(self):
        unet = sd15_reduced_unet()
        assert 0.0 <= unet.non_attention_fraction < 1.0
