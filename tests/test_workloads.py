"""Unit tests for :mod:`repro.workloads` (attention shapes, Table 1, suites, SD-1.5 UNet)."""

from __future__ import annotations

import pytest

from repro.workloads.attention import AttentionWorkload
from repro.workloads.networks import (
    NETWORKS,
    get_network,
    list_networks,
    name_aliases,
    table1_rows,
)
from repro.workloads.stable_diffusion import (
    sd15_cross_attention_units,
    sd15_reduced_unet,
)
from repro.workloads.suites import (
    GQA_CONFIGS,
    LONG_CONTEXT_SEQS,
    MAS_SUITES_FILE_ENV,
    TABLE1_BATCH_SIZES,
    SuiteEntry,
    WorkloadSuite,
    clear_user_suites,
    get_suite,
    list_suites,
    load_suites_file,
    parse_suite_spec,
    register_suite,
)


class TestAttentionWorkload:
    def test_self_attention_constructor(self):
        wl = AttentionWorkload.self_attention(heads=12, seq=512, emb=64, name="bert")
        assert wl.seq_q == wl.seq_kv == 512
        assert wl.name == "bert"
        assert wl.num_head_blocks == 12

    def test_derived_sizes(self):
        wl = AttentionWorkload(batch=2, heads=4, seq_q=128, seq_kv=256, emb=32, dtype_bytes=2)
        assert wl.q_elements == 2 * 4 * 128 * 32
        assert wl.kv_elements == 2 * 4 * 256 * 32
        assert wl.score_elements == 2 * 4 * 128 * 256
        assert wl.q_bytes == wl.q_elements * 2
        assert wl.input_bytes == wl.q_bytes + wl.k_bytes + wl.v_bytes
        assert wl.output_bytes == wl.q_bytes

    def test_work_counts(self):
        wl = AttentionWorkload(batch=1, heads=2, seq_q=64, seq_kv=64, emb=16)
        assert wl.qk_macs == 2 * 64 * 64 * 16
        assert wl.pv_macs == wl.qk_macs
        assert wl.total_macs == 2 * wl.qk_macs
        assert wl.softmax_elements == wl.score_elements

    def test_with_seq_and_with_batch(self):
        wl = AttentionWorkload.self_attention(heads=2, seq=64, emb=16)
        longer = wl.with_seq(256)
        assert longer.seq_q == longer.seq_kv == 256
        cross = wl.with_seq(64, 128)
        assert cross.seq_q == 64 and cross.seq_kv == 128
        assert wl.with_batch(4).batch == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            AttentionWorkload(heads=0)
        with pytest.raises(ValueError):
            AttentionWorkload(seq_q=-1)

    def test_describe_contains_shape(self):
        text = AttentionWorkload.self_attention(heads=8, seq=512, emb=128, name="XLM").describe()
        assert "XLM" in text and "H=8" in text and "Nq=512" in text


class TestTable1Registry:
    def test_all_twelve_networks_present(self):
        assert len(list_networks()) == 12
        assert len(NETWORKS) == 12

    @pytest.mark.parametrize(
        "name, heads, seq, hidden, emb",
        [
            ("BERT-Base & T5-Base", 12, 512, 768, 64),
            ("BERT-Large & T5-Large", 16, 512, 1024, 64),
            ("BERT-Small", 8, 512, 512, 64),
            ("Llama3-8B & T5-3B (T5-XL)", 32, 512, 4096, 128),
            ("T5-Mini & T5-Small", 8, 512, 256, 32),
            ("ViT-B/14", 12, 196, 768, 64),
            ("ViT-L/14", 16, 196, 1024, 64),
            ("ViT-H/14", 16, 196, 1280, 80),
            ("ViT-B/16", 12, 256, 768, 64),
            ("ViT-L/16", 16, 256, 1024, 64),
            ("ViT-H/16", 16, 256, 1280, 80),
            ("XLM", 8, 512, 1024, 128),
        ],
    )
    def test_table1_values(self, name, heads, seq, hidden, emb):
        """Every row of Table 1 is reproduced exactly."""
        cfg = get_network(name)
        assert (cfg.heads, cfg.seq, cfg.hidden, cfg.emb) == (heads, seq, hidden, emb)

    def test_prefix_lookup(self):
        assert get_network("BERT-Base").heads == 12
        assert get_network("llama3").emb == 128
        with pytest.raises(KeyError):
            get_network("GPT-7")
        with pytest.raises(KeyError, match="ambiguous"):
            get_network("ViT")

    def test_exact_lookup(self):
        assert get_network("XLM").name == "XLM"
        assert get_network("BERT-Base & T5-Base").name == "BERT-Base & T5-Base"

    def test_alias_lookup_resolves_amp_joined_rows(self):
        """Every side of an ``&``-joined Table-1 row is a valid lookup name."""
        assert get_network("T5-Base").name == "BERT-Base & T5-Base"
        assert get_network("t5-large").name == "BERT-Large & T5-Large"
        assert get_network("T5-Small").name == "T5-Mini & T5-Small"
        assert get_network("T5-3B").name == "Llama3-8B & T5-3B (T5-XL)"
        assert get_network("T5-XL").name == "Llama3-8B & T5-3B (T5-XL)"
        assert get_network("Llama3-8B").name == "Llama3-8B & T5-3B (T5-XL)"

    def test_alias_prefix_lookup(self):
        assert get_network("BERT-L").name == "BERT-Large & T5-Large"
        assert get_network("t5-mi").name == "T5-Mini & T5-Small"

    def test_ambiguous_alias_lookup(self):
        with pytest.raises(KeyError, match="ambiguous"):
            get_network("T5")  # T5-Base, T5-Large, T5-3B, T5-Mini, ...
        with pytest.raises(KeyError, match="ambiguous"):
            get_network("BERT")

    def test_unknown_lookup_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_network("GPT-7")

    def test_name_aliases(self):
        assert name_aliases("XLM") == ()
        assert name_aliases("BERT-Base & T5-Base") == ("BERT-Base", "T5-Base")
        assert set(name_aliases("Llama3-8B & T5-3B (T5-XL)")) == {
            "Llama3-8B",
            "T5-3B (T5-XL)",
            "T5-3B",
            "T5-XL",
        }
        # Derived-suite tags are re-attached to every alias, first part included.
        tagged = name_aliases("Llama3-8B & T5-3B (T5-XL) @b8")
        assert {"Llama3-8B @b8", "T5-3B @b8", "T5-XL @b8"} <= set(tagged)
        assert "BERT-Base @b4" in name_aliases("BERT-Base & T5-Base @b4")

    def test_workload_instantiation(self):
        wl = get_network("XLM").workload(batch=2)
        assert wl.heads == 8 and wl.seq_q == 512 and wl.emb == 128 and wl.batch == 2
        assert wl.name == "XLM"

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 12
        assert set(rows[0]) == {"network", "heads", "seq", "hidden", "emb_kv"}


class TestStableDiffusionWorkload:
    def test_fifteen_units(self):
        unet = sd15_reduced_unet()
        assert unet.num_units == 15

    def test_largest_unit_matches_paper(self):
        """The largest attention layer has 2 heads, N=4096, E=64 (Section 5.2.2)."""
        largest = sd15_reduced_unet().largest_unit
        assert largest.heads == 2 and largest.seq == 4096 and largest.emb == 64

    def test_workloads_generated_for_all_units(self):
        unet = sd15_reduced_unet()
        workloads = unet.workloads()
        assert len(workloads) == 15
        assert all(w.seq_q == w.seq_kv for w in workloads)

    def test_non_attention_fraction_bounds(self):
        unet = sd15_reduced_unet()
        assert 0.0 <= unet.non_attention_fraction < 1.0


class TestWorkloadSuites:
    def test_four_builtin_suites(self):
        assert len(list_suites()) >= 4
        assert set(list_suites()) >= {
            "table1",
            "table1-batched",
            "cross-attention",
            "long-context",
        }

    @pytest.mark.parametrize(
        "name",
        [
            "table1",
            "table1-batched",
            "cross-attention",
            "long-context",
            "decode-step",
            "gqa",
        ],
    )
    def test_suite_invariants(self, name):
        """Unique entry names, positive shape fields, name-normalized workloads."""
        suite = get_suite(name)
        names = suite.entry_names()
        assert len(names) == len(set(names)) == len(suite) > 0
        for entry in suite:
            wl = entry.workload
            assert wl.name == entry.name
            assert min(wl.batch, wl.heads, wl.seq_q, wl.seq_kv, wl.emb, wl.dtype_bytes) > 0

    def test_table1_suite_matches_network_registry(self):
        """The default suite *is* Table 1: same names, same order, same shapes."""
        suite = get_suite("table1")
        assert suite.entry_names() == list_networks()
        for name in list_networks():
            assert suite.workload_for(name) == get_network(name).workload()

    def test_table1_batched_covers_every_batch(self):
        suite = get_suite("table1-batched")
        assert len(suite) == len(list_networks()) * len(TABLE1_BATCH_SIZES)
        assert {e.workload.batch for e in suite} == set(TABLE1_BATCH_SIZES)
        for batch in TABLE1_BATCH_SIZES:
            assert f"ViT-B/14 @b{batch}" in suite.entry_names()

    def test_cross_attention_entries_are_cross(self):
        suite = get_suite("cross-attention")
        assert len(suite) >= 4
        for entry in suite:
            assert entry.workload.seq_q != entry.workload.seq_kv
            assert entry.workload.is_cross_attention

    def test_cross_attention_promotes_sd_unet_shapes(self):
        """The SD ladder entries match the promoted cross-attention units."""
        suite = get_suite("cross-attention")
        for unit in sd15_cross_attention_units():
            assert suite.workload_for(unit.name) == unit.workload()
            assert unit.is_cross_attention

    def test_long_context_sweeps_2k_to_32k(self):
        suite = get_suite("long-context")
        seqs = sorted({e.workload.seq_q for e in suite})
        assert seqs == sorted(LONG_CONTEXT_SEQS)
        assert min(seqs) == 2048 and max(seqs) == 32768
        assert all(e.workload.seq_q == e.workload.seq_kv for e in suite)

    def test_decode_step_is_one_query_over_table1_kv(self):
        """decode-step: seq_q=1, KV cache at the network's Table-1 length."""
        suite = get_suite("decode-step")
        assert len(suite) == len(list_networks())
        for name in list_networks():
            entry = suite.get_entry(f"{name} @dec")
            cfg = get_network(name)
            wl = entry.workload
            assert wl.seq_q == 1
            assert wl.seq_kv == cfg.seq
            assert wl.heads == cfg.heads and wl.emb == cfg.emb
            assert wl.batch == 1
            assert wl.is_cross_attention  # seq_q != seq_kv by construction

    def test_decode_step_aliases_and_modifiers(self):
        suite = get_suite("decode-step")
        # &-joined Table-1 names resolve from either side, tag included
        assert suite.get_entry("T5-Base @dec").name == "BERT-Base & T5-Base @dec"
        # composes with @batch=N for batched serving sweeps
        batched = get_suite("decode-step@batch=8")
        entry = batched.get_entry("XLM @dec @b8")
        assert entry.workload.batch == 8 and entry.workload.seq_q == 1
        # seq filters key on the KV length (max of the two seqs)
        short = get_suite("decode-step@seq<=256")
        assert all(e.workload.seq_kv <= 256 for e in short)
        assert len(short) > 0

    def test_decode_step_cache_keys_distinct_from_prefill(self):
        """A decode entry never collides with the full self-attention shape."""
        from repro.exec import tuning_cache_key
        from repro.hardware.presets import simulated_edge_device

        hw = simulated_edge_device()
        decode = get_suite("decode-step").workload_for("XLM @dec")
        prefill = get_suite("table1").workload_for("XLM")
        keys = {
            tuning_cache_key(hw, "mas", wl, "mcts+ga", 10, "cycles", 0)
            for wl in (decode, prefill)
        }
        assert len(keys) == 2

    def test_with_batch_round_trip(self):
        suite = get_suite("table1")
        batched = suite.with_batch(8)
        entry = batched.get_entry("ViT-B/14 @b8")
        expected = get_network("ViT-B/14").workload().with_batch(8)
        assert entry.workload == expected.renamed("ViT-B/14 @b8")
        # re-batching back restores the original shape (names stay tagged)
        assert entry.workload.with_batch(1) == (
            get_network("ViT-B/14").workload().renamed("ViT-B/14 @b8")
        )

    def test_entry_lookup_alias_and_errors(self):
        suite = get_suite("table1-batched")
        assert suite.get_entry("T5-Base @b4").name == "BERT-Base & T5-Base @b4"
        assert suite.get_entry("BERT-Base @b4").name == "BERT-Base & T5-Base @b4"
        with pytest.raises(KeyError, match="ambiguous"):
            suite.get_entry("ViT-B/14")  # @b4 / @b8 / @b16
        with pytest.raises(KeyError, match="unknown"):
            suite.get_entry("GPT-7")

    def test_duplicate_entry_names_rejected(self):
        entry = SuiteEntry("dup", AttentionWorkload.self_attention(heads=2, seq=64, emb=16))
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSuite(name="bad", description="", entries=(entry, entry))

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSuite(name="empty", description="", entries=())


class TestSuiteSpecs:
    def test_builtin_and_prefix(self):
        assert get_suite("table1").name == "table1"
        assert get_suite("cross").name == "cross-attention"
        assert get_suite("long").name == "long-context"

    def test_suite_passthrough(self):
        suite = get_suite("table1")
        assert get_suite(suite) is suite

    def test_batch_modifier(self):
        suite = parse_suite_spec("table1@batch=8")
        assert suite.name == "table1@batch=8"
        assert all(e.workload.batch == 8 for e in suite)
        assert suite.entry_names() == [f"{n} @b8" for n in list_networks()]

    def test_seq_filters(self):
        le = parse_suite_spec("long-context@seq<=8192")
        assert {e.workload.seq_q for e in le} == {2048, 4096, 8192}
        ge = parse_suite_spec("long-context@seq>=16384")
        assert {e.workload.seq_q for e in ge} == {16384, 32768}
        eq = parse_suite_spec("long-context@seq=4096")
        assert {e.workload.seq_q for e in eq} == {4096}

    def test_seq_filter_keys_on_max_seq(self):
        """Cross-attention entries filter on max(seq_q, seq_kv)."""
        suite = parse_suite_spec("cross-attention@seq<=128")
        assert suite.entry_names() == ["sd.mid.xattn"]  # seq_q=64 but seq_kv=77

    def test_modifiers_compose(self):
        suite = parse_suite_spec("table1@batch=4,seq<=256")
        assert all(e.workload.batch == 4 for e in suite)
        assert all(e.workload.max_seq <= 256 for e in suite)
        assert len(suite) == 6  # the six ViT rows
        also = parse_suite_spec("table1@batch=4@seq<=256")
        assert also.entry_names() == suite.entry_names()

    def test_bad_specs_rejected(self):
        with pytest.raises(KeyError, match="unknown suite"):
            parse_suite_spec("table9")
        with pytest.raises(ValueError, match="modifier"):
            parse_suite_spec("table1@heads=4")
        with pytest.raises(ValueError, match="batch"):
            parse_suite_spec("table1@batch<=4")
        with pytest.raises(ValueError):
            parse_suite_spec("table1@batch=0")
        with pytest.raises(ValueError, match="no entries"):
            parse_suite_spec("table1@seq<=1")

    def test_identical_entries_across_suites(self):
        """The same shape derived through different suites is the same entry —
        the invariant cross-suite cache reuse rests on."""
        via_spec = get_suite("table1@batch=8").get_entry("ViT-B/14 @b8")
        via_batched = get_suite("table1-batched").get_entry("ViT-B/14 @b8")
        assert via_spec == via_batched
        assert via_spec.workload == via_batched.workload


class TestGqaSuite:
    def test_gqa_folding_is_arithmetically_exact(self):
        """The folded workload carries exactly the MHA arithmetic of q_heads
        query heads over kv_heads shared K/V heads."""
        q_heads, kv_heads, seq, emb = 32, 8, 2048, 128
        folded = AttentionWorkload.gqa(q_heads, kv_heads, seq=seq, emb=emb)
        # per-query-head work is unchanged: all q_heads heads' MACs are there
        assert folded.qk_macs == q_heads * seq * seq * emb
        assert folded.softmax_elements == q_heads * seq * seq
        assert folded.q_bytes == q_heads * seq * emb * folded.dtype_bytes
        # ... but K/V carry only the kv_heads shared copies (the GQA win)
        assert folded.k_bytes == kv_heads * seq * emb * folded.dtype_bytes
        assert folded.num_head_blocks == kv_heads

    def test_gqa_constructor_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            AttentionWorkload.gqa(q_heads=10, kv_heads=3, seq=64, emb=64)
        with pytest.raises(ValueError):
            AttentionWorkload.gqa(q_heads=0, kv_heads=1, seq=64, emb=64)
        mqa = AttentionWorkload.gqa(q_heads=8, kv_heads=1, seq=64, emb=64)
        assert mqa.heads == 1 and mqa.seq_q == 8 * 64 and mqa.seq_kv == 64

    def test_gqa_suite_matches_its_configs(self):
        suite = get_suite("gqa")
        assert len(suite) == len(GQA_CONFIGS)
        for name, q_heads, kv_heads, seq, emb in GQA_CONFIGS:
            assert q_heads > kv_heads  # head sharing is the suite's point
            wl = suite.workload_for(name)
            assert wl == AttentionWorkload.gqa(
                q_heads, kv_heads, seq=seq, emb=emb, name=name
            )
            assert wl.heads == kv_heads < q_heads

    def test_gqa_composes_with_modifiers(self):
        batched = get_suite("gqa@batch=4")
        assert all(e.workload.batch == 4 for e in batched)
        assert "llama3-8b.gqa @b4" in batched.entry_names()
        # seq filters key on the *folded* query length (documented behaviour)
        short = get_suite("gqa@seq<=8192")
        assert len(short) > 0
        assert all(e.workload.max_seq <= 8192 for e in short)
        with pytest.raises(ValueError, match="no entries"):
            parse_suite_spec("gqa@seq<=64")


class TestUserSuites:
    @pytest.fixture(autouse=True)
    def _clean_registry(self, monkeypatch):
        monkeypatch.delenv(MAS_SUITES_FILE_ENV, raising=False)
        clear_user_suites()
        yield
        clear_user_suites()

    def suites_json(self, tmp_path, payload: dict) -> str:
        import json

        path = tmp_path / "suites.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_load_json_file_registers_suites(self, tmp_path):
        path = self.suites_json(
            tmp_path,
            {
                "suites": {
                    "prod": {
                        "description": "serving shapes",
                        "entries": [
                            {"network": "BERT-Base"},
                            {
                                "name": "chat",
                                "q_heads": 32,
                                "kv_heads": 8,
                                "seq": 4096,
                                "emb": 128,
                                "batch": 4,
                            },
                            {"name": "embed", "heads": 16, "seq": 512, "emb": 64},
                        ],
                    },
                    "prod-short": {"base": "prod@seq<=512"},
                }
            },
        )
        assert load_suites_file(path) == ["prod", "prod-short"]
        assert "prod" in list_suites() and "prod-short" in list_suites()
        suite = get_suite("prod")
        assert suite.description == "serving shapes"
        assert suite.workload_for("BERT-Base") == get_network("BERT-Base").workload()
        chat = suite.workload_for("chat")
        assert chat == AttentionWorkload.gqa(
            32, 8, seq=4096, emb=128, batch=4, name="chat"
        )
        embed = suite.workload_for("embed")
        assert embed.seq_q == embed.seq_kv == 512
        # the derived suite saw the entries registered earlier in the file
        # (chat's folded query length 16384 fails the seq<=512 filter)
        assert get_suite("prod-short").entry_names() == ["BERT-Base & T5-Base", "embed"]
        # registered suites compose with spec modifiers like built-ins
        assert all(e.workload.batch == 8 for e in get_suite("prod@batch=8"))

    def test_load_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "suites.toml"
        path.write_text(
            "\n".join(
                [
                    "[suites.mine]",
                    'description = "one shape"',
                    "[[suites.mine.entries]]",
                    'name = "shape"',
                    "heads = 4",
                    "seq = 128",
                    "emb = 64",
                ]
            )
        )
        assert load_suites_file(path) == ["mine"]
        assert get_suite("mine").workload_for("shape").heads == 4

    def test_broken_env_file_raises_every_time_and_rolls_back(
        self, tmp_path, monkeypatch
    ):
        """A failing $MAS_SUITES_FILE load is never cached as success: every
        lookup re-raises the config error, and the suites registered before
        the bad one are rolled back (atomic load)."""
        import json

        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "suites": {
                        "good": {"entries": [{"network": "XLM"}]},
                        "bad": {"entries": [{"name": "x", "bogus": 1}]},
                    }
                }
            )
        )
        monkeypatch.setenv(MAS_SUITES_FILE_ENV, str(path))
        with pytest.raises(ValueError, match="bogus"):
            list_suites()
        with pytest.raises(ValueError, match="bogus"):  # not cached as loaded
            list_suites()
        monkeypatch.delenv(MAS_SUITES_FILE_ENV)
        assert "good" not in list_suites()  # the partial load was rolled back

    def test_env_file_with_base_derivation(self, tmp_path, monkeypatch):
        """A 'base' spec inside $MAS_SUITES_FILE resolves through the registry
        mid-load without re-entering the env loader (regression: recursion)."""
        import json

        path = tmp_path / "derived.json"
        path.write_text(
            json.dumps({"suites": {"short": {"base": "table1@seq<=256"}}})
        )
        monkeypatch.setenv(MAS_SUITES_FILE_ENV, str(path))
        assert "short" in list_suites()
        assert all(e.workload.max_seq <= 256 for e in get_suite("short"))

    def test_explicit_file_wins_over_env_default(self, tmp_path, monkeypatch):
        """use_suites_file (the --suites-file flag) replaces $MAS_SUITES_FILE:
        colliding names keep the flag's version, env-only names are dropped."""
        import json

        from repro.workloads.suites import use_suites_file

        env_file = tmp_path / "env.json"
        env_file.write_text(
            json.dumps(
                {
                    "suites": {
                        "prod": {"entries": [{"network": "XLM"}]},
                        "env-only": {"entries": [{"network": "XLM"}]},
                    }
                }
            )
        )
        monkeypatch.setenv(MAS_SUITES_FILE_ENV, str(env_file))
        assert len(get_suite("prod")) == 1  # env default loaded

        flag_file = tmp_path / "flag.json"
        flag_file.write_text(
            json.dumps(
                {"suites": {"prod": {"entries": [{"network": "XLM"},
                                                 {"network": "ViT-B/14"}]}}}
            )
        )
        assert use_suites_file(flag_file) == ["prod"]
        assert len(get_suite("prod")) == 2  # the flag's version won
        assert "env-only" not in list_suites()  # env contribution dropped

    def test_explicit_file_ignores_broken_env_even_mid_load(
        self, tmp_path, monkeypatch
    ):
        """A 'base' spec inside the --suites-file resolves through the
        registry mid-load; the broken $MAS_SUITES_FILE the flag replaces must
        not be touched by that lookup."""
        from repro.workloads.suites import use_suites_file

        broken = tmp_path / "broken.json"
        broken.write_text("not json {")
        monkeypatch.setenv(MAS_SUITES_FILE_ENV, str(broken))
        flag_file = tmp_path / "flag.json"
        flag_file.write_text('{"suites": {"prod": {"base": "table1@batch=8"}}}')
        assert use_suites_file(flag_file) == ["prod"]
        assert all(e.workload.batch == 8 for e in get_suite("prod"))

    def test_failed_reload_restores_replaced_suites(self, tmp_path):
        """A load that replaces a suite and then fails must restore the
        original, not delete it."""
        import json

        good = tmp_path / "good.json"
        good.write_text(json.dumps({"suites": {"a": {"entries": [{"network": "XLM"}]}}}))
        load_suites_file(good)
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {
                    "suites": {
                        "a": {"entries": [{"network": "ViT-B/14"}]},
                        "b": {"entries": [{"name": "x", "bogus": 1}]},
                    }
                }
            )
        )
        with pytest.raises(ValueError, match="bogus"):
            load_suites_file(bad)
        assert get_suite("a").entry_names() == ["XLM"]  # original restored
        assert "b" not in list_suites()

    def test_env_var_loads_and_unloads(self, tmp_path, monkeypatch):
        path = self.suites_json(
            tmp_path,
            {"suites": {"envsuite": {"entries": [{"network": "XLM"}]}}},
        )
        monkeypatch.setenv(MAS_SUITES_FILE_ENV, path)
        assert "envsuite" in list_suites()
        assert len(get_suite("envsuite")) == 1
        # clearing the variable drops exactly the suites it contributed
        monkeypatch.delenv(MAS_SUITES_FILE_ENV)
        assert "envsuite" not in list_suites()

    def test_builtin_names_are_protected(self, tmp_path):
        path = self.suites_json(
            tmp_path, {"suites": {"table1": {"entries": [{"network": "XLM"}]}}}
        )
        with pytest.raises(ValueError, match="built-in"):
            load_suites_file(path)

    def test_register_suite_conflicts_and_replacement(self):
        suite = WorkloadSuite(
            name="custom",
            description="d",
            entries=(SuiteEntry("e", AttentionWorkload(heads=2, seq_q=64, seq_kv=64)),),
        )
        register_suite(suite)
        with pytest.raises(ValueError, match="already registered"):
            register_suite(suite)
        register_suite(suite, replace_existing=True)  # reload path

    @pytest.mark.parametrize("name", ["v2@prod", "a,b", " padded "])
    def test_grammar_colliding_names_rejected_at_registration(self, name):
        """'@'/','/whitespace names would register but never resolve — the
        spec parser would split them — so registration refuses them loudly."""
        from dataclasses import replace as dc_replace

        suite = WorkloadSuite(
            name="placeholder",
            description="d",
            entries=(SuiteEntry("e", AttentionWorkload(heads=2, seq_q=64, seq_kv=64)),),
        )
        with pytest.raises(ValueError, match="reserved"):
            register_suite(dc_replace(suite, name=name))

    def test_malformed_files_rejected_loudly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_suites_file(bad)
        for payload in (
            {},  # no suites table
            {"suites": {}},  # empty table
            {"suites": {"s": {"entries": []}}},  # no entries
            {"suites": {"s": {"flavour": "?"}}},  # unknown key
            {"suites": {"s": {"base": "x", "entries": [{}]}}},  # both modes
            {"suites": {"s": {"entries": [{"heads": 4}]}}},  # nameless shape
            {"suites": {"s": {"entries": [{"name": "x", "bogus": 1}]}}},
            {
                "suites": {
                    "s": {
                        "entries": [
                            {"name": "x", "heads": 2, "q_heads": 4, "kv_heads": 2,
                             "seq": 64, "emb": 64}
                        ]
                    }
                }
            },  # heads and q_heads/kv_heads are exclusive
            {
                "suites": {
                    "s": {"entries": [{"name": "x", "q_heads": 4, "kv_heads": 2,
                                       "emb": 64}]}
                }
            },  # GQA without seq
        ):
            with pytest.raises((ValueError, KeyError)):
                load_suites_file(self.suites_json(tmp_path, payload))

    def test_suites_file_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = self.suites_json(
            tmp_path,
            {"suites": {"cli-suite": {"entries": [{"network": "ViT-B/14"}]}}},
        )
        assert main(["suites", "--suites-file", path]) == 0
        assert "cli-suite" in capsys.readouterr().out
        assert main(["suites", "cli-suite", "--suites-file", path]) == 0
        assert "ViT-B/14" in capsys.readouterr().out
